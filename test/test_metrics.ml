(* The live-metrics plane: log2 histogram bucket math, striped counters,
   percentile interpolation, the enable switch's allocation contract, the
   snapshot document shape, Latency percentile edge cases, and the timer
   wheel's shutdown/respawn pin. *)

module Metrics = Rpb_obs.Metrics
module Latency = Rpb_serve.Latency
module Pool = Rpb_pool.Pool
module J = Rpb_benchmarks.Bench_json

(* Every test runs against the same process-global registry; reset + disable
   keeps them independent. *)
let fresh () =
  Metrics.disable ();
  Metrics.reset ()

(* ---------- log2 bucket boundaries ---------- *)

let test_bucket_boundaries () =
  fresh ();
  Alcotest.(check int) "0 ns" 0 (Metrics.bucket_of_ns 0);
  Alcotest.(check int) "1 ns" 0 (Metrics.bucket_of_ns 1);
  Alcotest.(check int) "negative clamps to 0" 0 (Metrics.bucket_of_ns (-5));
  (* Bucket b holds [2^b, 2^(b+1)): exact powers land in their own bucket,
     one below is the previous bucket, one above stays. *)
  (* OCaml ints are 63-bit: 2^61 is the largest representable power, so the
     top reachable bucket is 61 (max_int = 2^62 - 1 lives in [2^61, 2^62)). *)
  for k = 2 to 61 do
    Alcotest.(check int)
      (Printf.sprintf "2^%d - 1" k)
      (k - 1)
      (Metrics.bucket_of_ns ((1 lsl k) - 1));
    Alcotest.(check int)
      (Printf.sprintf "2^%d" k)
      k
      (Metrics.bucket_of_ns (1 lsl k));
    Alcotest.(check int)
      (Printf.sprintf "2^%d + 1" k)
      k
      (Metrics.bucket_of_ns ((1 lsl k) + 1))
  done;
  Alcotest.(check int) "max_int lands in bucket 61" 61
    (Metrics.bucket_of_ns max_int);
  (* Bounds agree with membership. *)
  for b = 1 to 63 do
    let lo, hi = Metrics.bucket_bounds_ns b in
    Alcotest.(check (float 0.)) "lower bound" (Float.ldexp 1. b) lo;
    Alcotest.(check (float 0.)) "upper bound" (Float.ldexp 1. (b + 1)) hi
  done;
  let lo0, hi0 = Metrics.bucket_bounds_ns 0 in
  Alcotest.(check (float 0.)) "bucket 0 lower" 0. lo0;
  Alcotest.(check (float 0.)) "bucket 0 upper" 2. hi0

(* ---------- observation and merged views ---------- *)

let test_histogram_observe_and_merge () =
  fresh ();
  let h = Metrics.histogram "test.h" in
  Metrics.enable ();
  Metrics.observe_ns h 1;
  Metrics.observe_ns h 1000;
  Metrics.observe_ns h 1000;
  Metrics.observe_ns h 1_000_000;
  Metrics.disable ();
  Alcotest.(check int) "count" 4 (Metrics.hist_count h);
  Alcotest.(check int) "sum" 1_002_001 (Metrics.hist_sum_ns h);
  let buckets = Metrics.hist_buckets h in
  Alcotest.(check int) "bucket total = count" 4
    (Array.fold_left ( + ) 0 buckets);
  Alcotest.(check int) "1 ns in bucket 0" 1 buckets.(0);
  Alcotest.(check int) "1000 ns pair share a bucket" 2
    buckets.(Metrics.bucket_of_ns 1000);
  Alcotest.(check int) "1 ms alone" 1 buckets.(Metrics.bucket_of_ns 1_000_000)

let test_counter_totals_across_domains () =
  fresh ();
  let c = Metrics.counter "test.c" in
  Metrics.enable ();
  Metrics.incr c;
  Metrics.add c 9;
  (* Concurrent domains write their own stripes; the merged value is exact
     because no two of these writers share a stripe slot transactionally —
     each domain's plain increments are its own. *)
  let domains =
    Array.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to 1000 do
              Metrics.incr c
            done))
  in
  Array.iter Domain.join domains;
  Metrics.disable ();
  Alcotest.(check int) "merged counter" 4010 (Metrics.counter_value c)

let test_switch_gates_writes () =
  fresh ();
  let c = Metrics.counter "test.switch" in
  let h = Metrics.histogram "test.switch_h" in
  Metrics.incr c;
  Metrics.observe_ns h 500;
  Alcotest.(check int) "disabled incr is a no-op" 0 (Metrics.counter_value c);
  Alcotest.(check int) "disabled observe is a no-op" 0 (Metrics.hist_count h);
  Metrics.enable ();
  Alcotest.(check bool) "enabled" true (Metrics.enabled ());
  Alcotest.(check bool) "enable arms the pool GC probe" true
    (Pool.gc_sampling ());
  Metrics.incr c;
  Metrics.disable ();
  Alcotest.(check bool) "disable disarms the pool GC probe" false
    (Pool.gc_sampling ());
  Alcotest.(check int) "enabled incr lands" 1 (Metrics.counter_value c)

(* ---------- percentiles ---------- *)

let test_percentiles () =
  fresh ();
  let h = Metrics.histogram "test.pct" in
  Alcotest.(check (float 0.)) "empty histogram" 0. (Metrics.percentile_ms h 50.);
  (* A single sample interpolates inside its own bucket. *)
  Metrics.enable ();
  Metrics.observe_ns h 1500;
  Metrics.disable ();
  let p50 = Metrics.percentile_ms h 50. in
  let lo, hi = Metrics.bucket_bounds_ns (Metrics.bucket_of_ns 1500) in
  Alcotest.(check bool)
    (Printf.sprintf "single sample inside its bucket (%.6f ms)" p50)
    true
    (p50 >= lo *. 1e-6 && p50 <= hi *. 1e-6);
  (* Exact interpolation arithmetic on a hand-built bucket array: 100
     samples in bucket 10 ([1024, 2048) ns).  Nearest-rank ceil(q*n/100)
     then linear within the bucket. *)
  let buckets = Array.make 64 0 in
  buckets.(10) <- 100;
  let expect q =
    let rank = int_of_float (ceil (q *. 100. /. 100.)) in
    (1024. +. (1024. *. (float_of_int rank /. 100.))) *. 1e-6
  in
  List.iter
    (fun q ->
      Alcotest.(check (float 1e-12))
        (Printf.sprintf "p%.0f of uniform bucket" q)
        (expect q)
        (Metrics.percentile_of_buckets_ms buckets q))
    [ 1.; 50.; 95.; 99.; 100. ];
  (* Two buckets: p50 stays in the lower, p99 reaches the upper. *)
  let buckets = Array.make 64 0 in
  buckets.(10) <- 90;
  buckets.(20) <- 10;
  Alcotest.(check bool) "p50 in the low bucket" true
    (Metrics.percentile_of_buckets_ms buckets 50. < 2048. *. 1e-6);
  Alcotest.(check bool) "p99 in the high bucket" true
    (Metrics.percentile_of_buckets_ms buckets 99. >= 1048576. *. 1e-6);
  (* Quantile clamping. *)
  Alcotest.(check bool) "q<0 clamps" true
    (Metrics.percentile_of_buckets_ms buckets (-5.) > 0.);
  Alcotest.(check bool) "q>100 clamps" true
    (Metrics.percentile_of_buckets_ms buckets 250.
    <= snd (Metrics.bucket_bounds_ns 20) *. 1e-6)

(* ---------- the disabled path allocates nothing ---------- *)

let test_disabled_path_allocation_free () =
  fresh ();
  let c = Metrics.counter "test.alloc_c" in
  let h = Metrics.histogram "test.alloc_h" in
  (* Warm both paths, then measure: one atomic load per call, no
     allocation — same contract as Pool.Trace.span off. *)
  Metrics.incr c;
  Metrics.observe_ns h 100;
  let before = Gc.allocated_bytes () in
  for _ = 1 to 1000 do
    Metrics.incr c
  done;
  let per_incr = (Gc.allocated_bytes () -. before) /. 1000.0 in
  Alcotest.(check bool)
    (Printf.sprintf "disabled incr allocation-free (%.1f B)" per_incr)
    true (per_incr < 16.0);
  let before = Gc.allocated_bytes () in
  for i = 1 to 1000 do
    Metrics.observe_ns h i
  done;
  let per_obs = (Gc.allocated_bytes () -. before) /. 1000.0 in
  Alcotest.(check bool)
    (Printf.sprintf "disabled observe allocation-free (%.1f B)" per_obs)
    true (per_obs < 16.0);
  let g = Metrics.gauge "test.alloc_g" in
  let before = Gc.allocated_bytes () in
  for _ = 1 to 1000 do
    Metrics.set_gauge g 1.0
  done;
  let per_set = (Gc.allocated_bytes () -. before) /. 1000.0 in
  Alcotest.(check bool)
    (Printf.sprintf "disabled set_gauge allocation-free (%.1f B)" per_set)
    true (per_set < 16.0)

(* ---------- the snapshot document ---------- *)

let test_snapshot_shape () =
  fresh ();
  let c = Metrics.counter "test.snap_c" in
  let h = Metrics.histogram "test.snap_h" in
  Metrics.probe "test.snap_probe" (fun () -> 7.5);
  Metrics.probe "test.snap_raises" (fun () -> failwith "boom");
  Metrics.enable ();
  Metrics.incr c;
  Metrics.incr c;
  Metrics.observe_ns h 1_000_000;
  let s1 = Metrics.snapshot () in
  let s2 = Metrics.snapshot () in
  Metrics.disable ();
  Alcotest.(check string) "kind" "metrics" (J.get_str (J.member "kind" s1));
  Alcotest.(check bool) "seq advances" true
    (J.get_int (J.member "seq" s2) > J.get_int (J.member "seq" s1));
  let counters = J.member "counters" s1 in
  Alcotest.(check int) "counter value" 2
    (J.get_int (J.member "test.snap_c" counters));
  let gauges = J.member "gauges" s1 in
  Alcotest.(check (float 0.)) "probe evaluated" 7.5
    (J.get_float (J.member "test.snap_probe" gauges));
  Alcotest.(check bool) "raising probe reports null, not a crash" true
    (J.member "test.snap_raises" gauges = J.Null);
  let hist = J.member "test.snap_h" (J.member "histograms" s1) in
  Alcotest.(check int) "hist count" 1 (J.get_int (J.member "count" hist));
  Alcotest.(check int) "hist sum" 1_000_000
    (J.get_int (J.member "sum_ns" hist));
  (* The document round-trips through the printer/parser. *)
  let reparsed = J.of_string (J.to_string s1) in
  Alcotest.(check string) "round-trips" "metrics"
    (J.get_str (J.member "kind" reparsed));
  (* And rpb top's parser accepts it and reconciles the counter. *)
  (match Rpb_serve.Top.parse_snapshot s1 with
  | Error e -> Alcotest.fail ("top rejects snapshot: " ^ e)
  | Ok snap ->
    Alcotest.(check int) "top sees the counter" 2
      (Option.value (List.assoc_opt "test.snap_c" snap.Rpb_serve.Top.counters)
         ~default:(-1)));
  Metrics.reset ();
  Alcotest.(check int) "reset zeroes counters" 0 (Metrics.counter_value c);
  Alcotest.(check int) "reset zeroes histograms" 0 (Metrics.hist_count h)

(* ---------- pool export ---------- *)

let test_register_pool_probes () =
  fresh ();
  let pool = Pool.create ~num_workers:2 () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
  Metrics.register_pool ~prefix:"tpool" pool;
  Metrics.enable ();
  Pool.run pool (fun () ->
      Pool.parallel_for ~grain:1 ~start:0 ~finish:63
        ~body:(fun _ -> ignore (Sys.opaque_identity 0))
        pool);
  let s = Metrics.snapshot () in
  Metrics.disable ();
  let gauges = J.member "gauges" s in
  Alcotest.(check (float 0.)) "worker count probe" 2.
    (J.get_float (J.member "tpool.workers" gauges));
  Alcotest.(check bool) "tasks probe counted the loop" true
    (J.get_float (J.member "tpool.tasks" gauges) > 0.);
  Alcotest.(check bool) "timer probe present" true
    (J.member_opt "tpool.timer_pending" gauges <> None)

(* ---------- Latency summary edge cases ---------- *)

let test_latency_edge_cases () =
  (* Empty: all zeros, no division by zero. *)
  let empty = Latency.summarize (Latency.create ()) in
  Alcotest.(check int) "empty count" 0 empty.Latency.count;
  Alcotest.(check (float 0.)) "empty mean" 0. empty.Latency.mean_ms;
  Alcotest.(check (float 0.)) "empty p50" 0. empty.Latency.p50_ms;
  Alcotest.(check (float 0.)) "empty p99" 0. empty.Latency.p99_ms;
  Alcotest.(check (float 0.)) "empty max" 0. empty.Latency.max_ms;
  (* Single sample: every percentile is that sample. *)
  let one = Latency.create () in
  Latency.add one 3.5;
  let s = Latency.summarize one in
  Alcotest.(check int) "single count" 1 s.Latency.count;
  List.iter
    (fun v -> Alcotest.(check (float 1e-9)) "single sample everywhere" 3.5 v)
    [ s.Latency.mean_ms; s.Latency.p50_ms; s.Latency.p95_ms;
      s.Latency.p99_ms; s.Latency.max_ms ];
  (* All-equal samples: percentiles collapse to the common value. *)
  let eq = Latency.create () in
  for _ = 1 to 100 do
    Latency.add eq 2.0
  done;
  let s = Latency.summarize eq in
  Alcotest.(check int) "all-equal count" 100 s.Latency.count;
  List.iter
    (fun v -> Alcotest.(check (float 1e-9)) "all-equal percentiles" 2.0 v)
    [ s.Latency.mean_ms; s.Latency.p50_ms; s.Latency.p95_ms;
      s.Latency.p99_ms; s.Latency.max_ms ];
  (* Merge preserves both sides' counts. *)
  let merged = Latency.merge one eq in
  Alcotest.(check int) "merge count" 101 (Latency.count merged)

(* ---------- top: restart re-baselining and SLO gauge checks ---------- *)

module Top = Rpb_serve.Top

let mk_snap ?(seq = 1) ?(ts = 100.) ?(uptime = 10.) ?(counters = [])
    ?(gauges = []) () =
  { Top.seq; ts_s = ts; uptime_s = uptime; counters; gauges; hists = [] }

let test_top_restart_rebaseline () =
  let p = mk_snap ~seq:10 ~ts:100. ~uptime:50. ~counters:[ ("test.req", 100) ] () in
  (* A restarted server: uptime and seq start over, counters drop.  The
     delta consumers must re-baseline, not report a violation (or a
     negative rate). *)
  let fresh =
    mk_snap ~seq:1 ~ts:101. ~uptime:0.5 ~counters:[ ("test.req", 3) ] ()
  in
  (match Top.check_invariants ~prev:(Some p) fresh with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("restart flagged as a violation: " ^ e));
  Alcotest.(check bool) "render survives a restart" true
    (String.length (Top.render ~prev:p fresh) > 0);
  (* ...while the same counter drop WITHOUT a restart is the violation the
     check exists for *)
  let bad =
    mk_snap ~seq:11 ~ts:101. ~uptime:51. ~counters:[ ("test.req", 50) ] ()
  in
  (match Top.check_invariants ~prev:(Some p) bad with
  | Ok () -> Alcotest.fail "a mid-run counter drop must be flagged"
  | Error _ -> ())

let test_top_slo_gauge_invariants () =
  let ok_snap =
    mk_snap
      ~gauges:
        [ ("slo.availability.fast_burn", 2.5);
          ("slo.availability.level", 1.); ("slo.level", 2.) ]
      ()
  in
  (match Top.check_invariants ~prev:None ok_snap with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("valid slo gauges rejected: " ^ e));
  let bad_level = mk_snap ~gauges:[ ("slo.level", 3.) ] () in
  (match Top.check_invariants ~prev:None bad_level with
  | Ok () -> Alcotest.fail "level gauge 3 is not a valid encoding"
  | Error _ -> ());
  let bad_burn = mk_snap ~gauges:[ ("slo.x.slow_burn", -0.5) ] () in
  match Top.check_invariants ~prev:None bad_burn with
  | Ok () -> Alcotest.fail "negative burn gauge must be flagged"
  | Error _ -> ()

(* ---------- one percentile definition across the codebase ---------- *)

module Stats = Rpb_obs.Stats

(* Latency.summarize, Stats.percentile_sorted and the histogram-bucket
   interpolation all answer through Stats.nearest_rank now; seeded random
   sample sets pin them to each other. *)
let test_percentile_cross_implementation () =
  let rng = Rpb_prim.Rng.create 17 in
  for round = 1 to 20 do
    let n = 1 + ((round * 37) mod 200) in
    let samples = Array.init n (fun _ -> 0.001 +. Rpb_prim.Rng.float rng 50.) in
    let lat = Latency.create () in
    Array.iter (Latency.add lat) samples;
    let s = Latency.summarize lat in
    let sorted = Array.copy samples in
    Array.sort compare sorted;
    List.iter
      (fun (q, v) ->
        Alcotest.(check (float 1e-9))
          (Printf.sprintf "n=%d p%g agrees with percentile_sorted" n q)
          (Stats.percentile_sorted sorted q)
          v)
      [ (50., s.Latency.p50_ms); (95., s.Latency.p95_ms);
        (99., s.Latency.p99_ms) ];
    (* the log2-bucket estimate must land inside the bucket holding the
       exact nearest-rank sample *)
    let buckets = Array.make 64 0 in
    Array.iter
      (fun ms ->
        let b = Metrics.bucket_of_ns (int_of_float (ms *. 1e6)) in
        buckets.(b) <- buckets.(b) + 1)
      samples;
    List.iter
      (fun q ->
        let rank = Stats.nearest_rank ~count:n ~pct:q in
        let exact_ns = int_of_float (sorted.(rank - 1) *. 1e6) in
        let lo, hi = Metrics.bucket_bounds_ns (Metrics.bucket_of_ns exact_ns) in
        let est = Metrics.percentile_of_buckets_ms buckets q in
        Alcotest.(check bool)
          (Printf.sprintf "n=%d p%g bucket estimate inside the exact bucket"
             n q)
          true
          (est >= lo *. 1e-6 -. 1e-9 && est <= hi *. 1e-6 +. 1e-9))
      [ 50.; 95.; 99. ]
  done

(* ---------- timer wheel shutdown/respawn (the serve-drain pin) ---------- *)

let test_timer_shutdown_respawns () =
  let fired = Atomic.make 0 in
  let h = Pool.Timer.schedule ~delay_s:0.01 (fun () -> Atomic.incr fired) in
  let deadline = Unix.gettimeofday () +. 5.0 in
  while Atomic.get fired = 0 && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.005
  done;
  Alcotest.(check int) "timer fired" 1 (Atomic.get fired);
  Pool.Timer.cancel h;
  let spawned_before = Pool.Timer.domains_spawned () in
  (* What serve's drain does: shutdown joins the timer domain and abandons
     pending timers... *)
  let never = Pool.Timer.schedule ~delay_s:60.0 (fun () -> Atomic.incr fired) in
  Alcotest.(check int) "one pending" 1 (Pool.Timer.pending_count ());
  Pool.Timer.shutdown ();
  Alcotest.(check int) "shutdown abandons pending timers" 0
    (Pool.Timer.pending_count ());
  ignore never;
  (* ...and the next schedule transparently respawns a fresh domain, so a
     process serving again after a drain still has deadlines. *)
  let h2 = Pool.Timer.schedule ~delay_s:0.01 (fun () -> Atomic.incr fired) in
  let deadline = Unix.gettimeofday () +. 5.0 in
  while Atomic.get fired < 2 && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.005
  done;
  Alcotest.(check int) "respawned wheel fires" 2 (Atomic.get fired);
  Pool.Timer.cancel h2;
  Alcotest.(check int) "respawn cost exactly one more domain"
    (spawned_before + 1)
    (Pool.Timer.domains_spawned ());
  Pool.Timer.shutdown ()

let () =
  Alcotest.run "metrics"
    [
      ( "histogram",
        [
          Alcotest.test_case "bucket boundaries" `Quick test_bucket_boundaries;
          Alcotest.test_case "observe and merge" `Quick
            test_histogram_observe_and_merge;
          Alcotest.test_case "percentiles" `Quick test_percentiles;
        ] );
      ( "registry",
        [
          Alcotest.test_case "counter striping" `Quick
            test_counter_totals_across_domains;
          Alcotest.test_case "switch gates writes" `Quick
            test_switch_gates_writes;
          Alcotest.test_case "disabled path allocation-free" `Quick
            test_disabled_path_allocation_free;
          Alcotest.test_case "snapshot shape" `Quick test_snapshot_shape;
          Alcotest.test_case "pool probes" `Quick test_register_pool_probes;
        ] );
      ( "latency",
        [
          Alcotest.test_case "edge cases" `Quick test_latency_edge_cases;
          Alcotest.test_case "one percentile definition" `Quick
            test_percentile_cross_implementation;
        ] );
      ( "top",
        [
          Alcotest.test_case "restart re-baseline" `Quick
            test_top_restart_rebaseline;
          Alcotest.test_case "slo gauge invariants" `Quick
            test_top_slo_gauge_invariants;
        ] );
      ( "timer",
        [
          Alcotest.test_case "shutdown respawns" `Quick
            test_timer_shutdown_respawns;
        ] );
    ]
