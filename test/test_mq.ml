(* Tests for the binary heap and the MultiQueue relaxed priority scheduler. *)

open Rpb_mq

(* ---------- Binary_heap ---------- *)

let test_heap_ordering () =
  let h = Binary_heap.create () in
  List.iter (fun p -> Binary_heap.push h ~pri:p (p * 10)) [ 5; 1; 4; 2; 3 ];
  Alcotest.(check int) "size" 5 (Binary_heap.size h);
  let drained = Binary_heap.to_sorted_list h in
  Alcotest.(check (list (pair int int)))
    "priority order"
    [ (1, 10); (2, 20); (3, 30); (4, 40); (5, 50) ]
    drained;
  Alcotest.(check bool) "empty after drain" true (Binary_heap.is_empty h)

let test_heap_peek () =
  let h = Binary_heap.create () in
  Alcotest.(check (option (pair int int))) "peek empty" None (Binary_heap.peek_min h);
  Binary_heap.push h ~pri:7 70;
  Binary_heap.push h ~pri:3 30;
  Alcotest.(check (option (pair int int))) "peek" (Some (3, 30)) (Binary_heap.peek_min h);
  Alcotest.(check int) "peek does not remove" 2 (Binary_heap.size h)

let test_heap_duplicate_priorities () =
  let h = Binary_heap.create () in
  List.iter (fun v -> Binary_heap.push h ~pri:1 v) [ 100; 200; 300 ];
  let vs = List.map snd (Binary_heap.to_sorted_list h) in
  Alcotest.(check (list int)) "all values present" [ 100; 200; 300 ]
    (List.sort compare vs)

let test_heap_growth () =
  let h = Binary_heap.create ~capacity:2 () in
  for i = 999 downto 0 do
    Binary_heap.push h ~pri:i i
  done;
  Alcotest.(check int) "size" 1000 (Binary_heap.size h);
  let sorted = Binary_heap.to_sorted_list h in
  Alcotest.(check int) "drained" 1000 (List.length sorted);
  Alcotest.(check bool) "ordered" true
    (List.for_all2 (fun (p, v) i -> p = i && v = i) sorted (List.init 1000 Fun.id))

let prop_heap_matches_sorted =
  QCheck.Test.make ~name:"heap drains in sorted order" ~count:50
    QCheck.(list (int_bound 1000))
    (fun ps ->
      let h = Binary_heap.create () in
      List.iter (fun p -> Binary_heap.push h ~pri:p p) ps;
      let drained = List.map fst (Binary_heap.to_sorted_list h) in
      drained = List.sort compare ps)

(* ---------- Multiqueue ---------- *)

let test_mq_push_pop_single_lane () =
  let q = Multiqueue.create ~queues:1 () in
  Multiqueue.push q ~pri:5 50;
  Multiqueue.push q ~pri:1 10;
  Alcotest.(check (option (pair int int))) "exact min on 1 lane" (Some (1, 10))
    (Multiqueue.pop q);
  Alcotest.(check (option (pair int int))) "next" (Some (5, 50)) (Multiqueue.pop q);
  Alcotest.(check (option (pair int int))) "empty" None (Multiqueue.pop q)

let test_mq_no_loss_no_dup_sequential () =
  let q = Multiqueue.create ~queues:8 () in
  let n = 5_000 in
  for i = 0 to n - 1 do
    Multiqueue.push q ~pri:i i
  done;
  Alcotest.(check int) "size" n (Multiqueue.size q);
  let seen = Array.make n 0 in
  let rec drain () =
    match Multiqueue.pop q with
    | Some (_, v) ->
      seen.(v) <- seen.(v) + 1;
      drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check bool) "each exactly once" true (Array.for_all (fun c -> c = 1) seen);
  Alcotest.(check bool) "empty" true (Multiqueue.is_empty q)

let test_mq_relaxed_rank_quality () =
  (* Pops must be approximately ordered: with best-of-two on 4 lanes the
     average inversion distance is small.  We assert a loose bound to avoid
     flakiness while still catching a broken (e.g. LIFO) implementation. *)
  let q = Multiqueue.create ~queues:4 () in
  let n = 10_000 in
  for i = 0 to n - 1 do
    Multiqueue.push q ~pri:i i
  done;
  let displacement = ref 0 in
  for k = 0 to n - 1 do
    match Multiqueue.pop q with
    | Some (p, _) -> displacement := !displacement + abs (p - k)
    | None -> Alcotest.fail "premature empty"
  done;
  let avg = float_of_int !displacement /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "average rank error small (%.1f)" avg)
    true (avg < 64.0)

let test_mq_concurrent_producers_consumers () =
  let q = Multiqueue.create ~queues:8 () in
  let n_per = 5_000 and nprod = 3 in
  let total = n_per * nprod in
  let seen = Rpb_prim.Atomic_array.make total 0 in
  let producers_done = Atomic.make 0 in
  let consumed = Atomic.make 0 in
  let producers =
    List.init nprod (fun d ->
        Domain.spawn (fun () ->
            for i = 0 to n_per - 1 do
              let v = (d * n_per) + i in
              Multiqueue.push q ~pri:(Rpb_prim.Rng.hash64 v mod 1000) v
            done;
            Atomic.incr producers_done))
  in
  let consumers =
    List.init 2 (fun _ ->
        Domain.spawn (fun () ->
            let rec go () =
              match Multiqueue.pop q with
              | Some (_, v) ->
                ignore (Rpb_prim.Atomic_array.fetch_and_add seen v 1);
                Atomic.incr consumed;
                go ()
              | None ->
                if Atomic.get producers_done < nprod || Atomic.get consumed < total
                then begin
                  Domain.cpu_relax ();
                  if Atomic.get consumed < total then go ()
                end
            in
            go ()))
  in
  List.iter Domain.join producers;
  List.iter Domain.join consumers;
  let bad = ref 0 in
  for v = 0 to total - 1 do
    if Rpb_prim.Atomic_array.get seen v <> 1 then incr bad
  done;
  Alcotest.(check int) "exactly once across domains" 0 !bad

(* ---------- Scheduler ---------- *)

let test_scheduler_drains_transitive_work () =
  (* Each task with value v > 0 spawns v-1; counts all executions. *)
  let q = Multiqueue.create ~queues:4 () in
  let s = Multiqueue.Scheduler.create q in
  let executed = Atomic.make 0 in
  Multiqueue.Scheduler.push s ~pri:0 6;
  Multiqueue.Scheduler.run s ~num_workers:3 ~handler:(fun s ~pri:_ v ->
      Atomic.incr executed;
      if v > 1 then Multiqueue.Scheduler.push s ~pri:0 (v - 1));
  (* 6 -> 5 -> ... -> 1: six executions. *)
  Alcotest.(check int) "chain executed" 6 (Atomic.get executed);
  Alcotest.(check bool) "queue drained" true (Multiqueue.is_empty q)

let test_scheduler_fanout () =
  let q = Multiqueue.create ~queues:8 () in
  let s = Multiqueue.Scheduler.create q in
  let executed = Atomic.make 0 in
  (* A binary fan-out tree of depth 10: 2^11 - 1 tasks. *)
  Multiqueue.Scheduler.push s ~pri:0 10;
  Multiqueue.Scheduler.run s ~num_workers:4 ~handler:(fun s ~pri:_ depth ->
      Atomic.incr executed;
      if depth > 0 then begin
        Multiqueue.Scheduler.push s ~pri:depth (depth - 1);
        Multiqueue.Scheduler.push s ~pri:depth (depth - 1)
      end);
  Alcotest.(check int) "tree size" ((1 lsl 11) - 1) (Atomic.get executed)

let test_scheduler_propagates_exception () =
  let q = Multiqueue.create ~queues:2 () in
  let s = Multiqueue.Scheduler.create q in
  Multiqueue.Scheduler.push s ~pri:0 1;
  Alcotest.check_raises "handler failure" (Failure "task boom") (fun () ->
      Multiqueue.Scheduler.run s ~num_workers:2 ~handler:(fun _ ~pri:_ _ ->
          failwith "task boom"))

let test_scheduler_single_worker () =
  let q = Multiqueue.create ~queues:2 () in
  let s = Multiqueue.Scheduler.create q in
  let acc = ref 0 in
  for i = 1 to 10 do
    Multiqueue.Scheduler.push s ~pri:i i
  done;
  Multiqueue.Scheduler.run s ~num_workers:1 ~handler:(fun _ ~pri:_ v -> acc := !acc + v);
  Alcotest.(check int) "all handled" 55 !acc

let () =
  Alcotest.run "rpb_mq"
    [
      ( "binary_heap",
        [
          Alcotest.test_case "ordering" `Quick test_heap_ordering;
          Alcotest.test_case "peek" `Quick test_heap_peek;
          Alcotest.test_case "duplicate priorities" `Quick
            test_heap_duplicate_priorities;
          Alcotest.test_case "growth" `Quick test_heap_growth;
          QCheck_alcotest.to_alcotest prop_heap_matches_sorted;
        ] );
      ( "multiqueue",
        [
          Alcotest.test_case "single lane exact" `Quick test_mq_push_pop_single_lane;
          Alcotest.test_case "no loss/dup" `Quick test_mq_no_loss_no_dup_sequential;
          Alcotest.test_case "rank quality" `Quick test_mq_relaxed_rank_quality;
          Alcotest.test_case "concurrent producers/consumers" `Quick
            test_mq_concurrent_producers_consumers;
        ] );
      ( "scheduler",
        [
          Alcotest.test_case "transitive drain" `Quick
            test_scheduler_drains_transitive_work;
          Alcotest.test_case "fanout tree" `Quick test_scheduler_fanout;
          Alcotest.test_case "exception propagates" `Quick
            test_scheduler_propagates_exception;
          Alcotest.test_case "single worker" `Quick test_scheduler_single_worker;
        ] );
    ]
