(* Tests for the scheduler flight recorder (Pool.Recorder) and the offline
   work/span analyzer (Rpb_obs): ring-buffer overflow, series-parallel
   provenance, closed-form work/span on a balanced join tree, the
   disabled-path overhead, exact analyzer arithmetic on hand-built
   recordings, and the profile JSON round-trip. *)

module Pool = Rpb_pool.Pool
module R = Pool.Recorder
module Sp_dag = Rpb_obs.Sp_dag
module Profile = Rpb_obs.Profile
module J = Rpb_benchmarks.Bench_json

let with_pool n f =
  let pool = Pool.create ~num_workers:n () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () -> f pool)

(* Arm the recorder, run [f] as the root strand, and always disarm —
   the recorder is process-global, so a failing test must not leave it on
   for the next one. *)
let record ?ring_capacity pool f =
  Pool.run pool (fun () ->
      R.start ?ring_capacity ();
      Fun.protect
        ~finally:(fun () -> if R.enabled () then ignore (R.stop ()))
        (fun () ->
          R.with_root f;
          R.stop ()))

(* ---------- ring overflow: drop-oldest, count the loss ---------- *)

let test_ring_overflow_drops_oldest () =
  with_pool 1 (fun pool ->
      let r =
        record ~ring_capacity:16 pool (fun () ->
            for _ = 1 to 200 do
              ignore (Pool.join pool (fun () -> 1) (fun () -> 2))
            done)
      in
      Alcotest.(check bool) "events were dropped" true (r.R.dropped > 0);
      Alcotest.(check bool) "something survived" true (r.R.events <> []);
      (* One worker, one ring: at most the capacity survives. *)
      Alcotest.(check bool) "survivors fit the ring" true
        (List.length r.R.events <= 16);
      (* stop sorts by timestamp. *)
      let rec sorted = function
        | a :: (b :: _ as tl) -> R.ts_of a <= R.ts_of b && sorted tl
        | _ -> true
      in
      Alcotest.(check bool) "events sorted by timestamp" true
        (sorted r.R.events);
      (* Drop-oldest: the survivors describe the *newest* constructs.  200
         joins ran; the surviving Fork/Join ids must be within one ring's
         worth of the largest id seen, and the last join must be complete. *)
      let ids =
        List.filter_map
          (function
            | R.Fork { id; _ } | R.Join { id; _ } -> Some id | _ -> None)
          r.R.events
      in
      Alcotest.(check bool) "fork/join ids survived" true (ids <> []);
      let max_id = List.fold_left max min_int ids in
      let min_id = List.fold_left min max_int ids in
      Alcotest.(check bool) "only the newest constructs survive" true
        (max_id - min_id < 16);
      Alcotest.(check bool) "the newest join is complete" true
        (List.exists
           (function R.Join { id; _ } -> id = max_id | _ -> false)
           r.R.events))

(* ---------- series-parallel provenance ---------- *)

let test_provenance_roundtrip () =
  with_pool 1 (fun pool ->
      let r =
        record pool (fun () ->
            ignore
              (Pool.join pool
                 (fun () -> fst (Pool.join pool (fun () -> 1) (fun () -> 2)))
                 (fun () -> snd (Pool.join pool (fun () -> 3) (fun () -> 4)))))
      in
      Alcotest.(check int) "no overflow" 0 r.R.dropped;
      let forks =
        List.filter_map
          (function
            | R.Fork { id; parent; parent_branch; _ } ->
              Some (id, parent, parent_branch)
            | _ -> None)
          r.R.events
      in
      Alcotest.(check int) "three constructs forked" 3 (List.length forks);
      (* Exactly one construct hangs off the root strand (construct 0)... *)
      (match List.filter (fun (_, p, _) -> p = 0) forks with
      | [ (outer, _, 0) ] ->
        (* ...and the two inner joins hang off the outer one, one per
           branch: the inline branch (0) and the spawned branch (1). *)
        let inner = List.filter (fun (_, p, _) -> p = outer) forks in
        Alcotest.(check int) "two children of the outer join" 2
          (List.length inner);
        let branches = List.sort compare (List.map (fun (_, _, b) -> b) inner) in
        Alcotest.(check (list int)) "one child per branch" [ 0; 1 ] branches;
        (* Every forked construct joined, and its spawned branch executed. *)
        List.iter
          (fun (id, _, _) ->
            Alcotest.(check bool)
              (Printf.sprintf "construct %d joined" id)
              true
              (List.exists
                 (function R.Join { id = j; _ } -> j = id | _ -> false)
                 r.R.events);
            Alcotest.(check bool)
              (Printf.sprintf "construct %d spawned branch executed" id)
              true
              (List.exists
                 (function
                   | R.Exec { construct; _ } -> construct = id | _ -> false)
                 r.R.events);
            List.iter
              (fun branch ->
                Alcotest.(check bool)
                  (Printf.sprintf "construct %d branch %d has work" id branch)
                  true
                  (List.exists
                     (function
                       | R.Work { construct; branch = b; _ } ->
                         construct = id && b = branch
                       | _ -> false)
                     r.R.events))
              [ 0; 1 ])
          forks
      | _ -> Alcotest.fail "expected exactly one construct under the root"))

(* ---------- closed-form work/span on a balanced join tree ---------- *)

let spin ns =
  let t0 = Rpb_prim.Timing.monotonic_ns () in
  while Rpb_prim.Timing.monotonic_ns () - t0 < ns do
    ()
  done

let test_join_tree_closed_form () =
  (* A perfect binary join tree of depth 3 with 2 ms busy-wait leaves:
     work = 8 leaves x 2 ms, span = one root-to-leaf path = ~2 ms, so the
     DAG parallelism is ~8.  One worker keeps the schedule deterministic —
     work/span are schedule-independent — and, under the migration-only
     burden rule, means *zero* queue delay: every spawned branch is popped
     by its owner, so burdened span must equal the span exactly. *)
  let leaf_ns = 2_000_000 in
  with_pool 1 (fun pool ->
      let rec tree d =
        if d = 0 then spin leaf_ns
        else
          ignore (Pool.join pool (fun () -> tree (d - 1)) (fun () -> tree (d - 1)))
      in
      let r = record pool (fun () -> tree 3) in
      Alcotest.(check int) "no overflow" 0 r.R.dropped;
      let m = Sp_dag.analyze r in
      Alcotest.(check int) "seven constructs" 7 m.Sp_dag.constructs;
      Alcotest.(check int) "seven spawned branches executed" 7 m.Sp_dag.tasks;
      (* Each leaf busy-waits at least leaf_ns, so work >= 8 x leaf_ns by
         construction; the upper bounds are generous noise allowances. *)
      Alcotest.(check bool)
        (Printf.sprintf "work >= 8 leaves (%d ns)" m.Sp_dag.work_ns)
        true
        (m.Sp_dag.work_ns >= 8 * leaf_ns);
      Alcotest.(check bool)
        (Printf.sprintf "work bounded (%d ns)" m.Sp_dag.work_ns)
        true
        (m.Sp_dag.work_ns <= 20 * leaf_ns);
      Alcotest.(check bool)
        (Printf.sprintf "span covers one leaf (%d ns)" m.Sp_dag.span_ns)
        true
        (m.Sp_dag.span_ns >= leaf_ns);
      Alcotest.(check bool)
        (Printf.sprintf "span is one path, not the whole tree (%d ns)"
           m.Sp_dag.span_ns)
        true
        (m.Sp_dag.span_ns <= 5 * leaf_ns);
      Alcotest.(check bool)
        (Printf.sprintf "parallelism near the closed-form 8 (%.2f)"
           m.Sp_dag.parallelism)
        true
        (m.Sp_dag.parallelism >= 2.0 && m.Sp_dag.parallelism <= 8.5);
      (* Migration-only burden: nothing migrates on one worker. *)
      Alcotest.(check int) "no queue delay on one worker" 0
        m.Sp_dag.queue_delay_ns;
      Alcotest.(check int) "burdened span = span on one worker"
        m.Sp_dag.span_ns m.Sp_dag.burdened_span_ns;
      (* Exactly the 8 leaf strands land in the granularity histogram, all
         near the 2^21 ns bucket. *)
      let total = List.fold_left (fun acc (_, c) -> acc + c) 0 m.Sp_dag.granularity in
      Alcotest.(check int) "eight leaf strands bucketed" 8 total;
      List.iter
        (fun (k, _) ->
          Alcotest.(check bool)
            (Printf.sprintf "leaf bucket 2^%d ns is ~2ms" k)
            true
            (k >= 19 && k <= 24))
        m.Sp_dag.granularity;
      Alcotest.(check (float 1e-9)) "one worker is perfectly balanced" 1.0
        (Sp_dag.load_imbalance m))

(* ---------- disabled-path overhead ---------- *)

let test_disabled_paths_stay_cheap () =
  with_pool 1 (fun pool ->
      Pool.run pool (fun () ->
          Alcotest.(check bool) "recorder is off" false (R.enabled ());
          let f () = () in
          (* Trace.span with both instrumentation layers off is a single
             atomic load around the call: allocation-free. *)
          Pool.Trace.span pool "warm" f;
          let before = Gc.allocated_bytes () in
          for _ = 1 to 1000 do
            Pool.Trace.span pool "off" f
          done;
          let per_span = (Gc.allocated_bytes () -. before) /. 1000.0 in
          Alcotest.(check bool)
            (Printf.sprintf "disabled Trace.span allocation-free (%.1f B)"
              per_span)
            true (per_span < 16.0);
          (* A join always allocates its promise, but with the recorder off
             it must not additionally allocate event records: the per-join
             footprint stays a few words, not a ring's worth. *)
          let g1 () = 1 and g2 () = 2 in
          ignore (Pool.join pool g1 g2);
          let before = Gc.allocated_bytes () in
          for _ = 1 to 1000 do
            ignore (Pool.join pool g1 g2)
          done;
          let per_join = (Gc.allocated_bytes () -. before) /. 1000.0 in
          Alcotest.(check bool)
            (Printf.sprintf "unrecorded join stays small (%.0f B)" per_join)
            true (per_join < 2048.0)))

(* ---------- exact analyzer arithmetic on hand-built recordings ---------- *)

(* One construct under the root, spawned branch *migrated* (forked on w0,
   executed on w1), so its 50 ns fork->exec gap is burden:

     root local: [0,100) + [700,800)           = 200 ns on w0
     c1 inline:  [100,400)                     = 300 ns on w0
     c1 spawned: [150,650) after Exec at 150   = 500 ns on w1

     c1:   work 800, span max(300,500) = 500, burdened max(300, 50+500) = 550
     root: work 1000, span 200+500 = 700, burdened 200+550 = 750 *)
let migrated_recording =
  {
    R.dropped = 0;
    policy = "default";
    events =
      [
        R.Work { construct = 0; branch = 0; w = 0; begin_ns = 0; end_ns = 100 };
        R.Fork { id = 1; parent = 0; parent_branch = 0; w = 0; ts_ns = 100 };
        R.Work { construct = 1; branch = 0; w = 0; begin_ns = 100; end_ns = 400 };
        R.Exec { construct = 1; w = 1; begin_ns = 150 };
        R.Work { construct = 1; branch = 1; w = 1; begin_ns = 150; end_ns = 650 };
        R.Join { id = 1; w = 0; ts_ns = 700 };
        R.Work { construct = 0; branch = 0; w = 0; begin_ns = 700; end_ns = 800 };
      ];
  }

let test_analyze_exact_arithmetic () =
  let m = Sp_dag.analyze migrated_recording in
  Alcotest.(check int) "work" 1000 m.Sp_dag.work_ns;
  Alcotest.(check int) "span" 700 m.Sp_dag.span_ns;
  Alcotest.(check int) "burdened span" 750 m.Sp_dag.burdened_span_ns;
  Alcotest.(check (float 1e-9)) "parallelism" (1000.0 /. 700.0)
    m.Sp_dag.parallelism;
  Alcotest.(check (float 1e-9)) "burdened parallelism" (1000.0 /. 750.0)
    m.Sp_dag.burdened_parallelism;
  Alcotest.(check int) "migrated queue delay" 50 m.Sp_dag.queue_delay_ns;
  Alcotest.(check int) "constructs" 1 m.Sp_dag.constructs;
  Alcotest.(check int) "tasks" 1 m.Sp_dag.tasks;
  Alcotest.(check int) "events" 7 m.Sp_dag.events;
  (* Both branches of c1 are leaves: 300 ns and 500 ns both land in the
     [2^8, 2^9) bucket. *)
  Alcotest.(check (list (pair int int))) "granularity" [ (8, 2) ]
    m.Sp_dag.granularity;
  (match m.Sp_dag.per_worker with
  | [ w0; w1 ] ->
    Alcotest.(check int) "w0 work" 500 w0.Sp_dag.work_ns;
    Alcotest.(check int) "w0 tasks" 0 w0.Sp_dag.tasks;
    Alcotest.(check int) "w1 work" 500 w1.Sp_dag.work_ns;
    Alcotest.(check int) "w1 tasks" 1 w1.Sp_dag.tasks
  | ws -> Alcotest.failf "expected two workers, got %d" (List.length ws));
  Alcotest.(check (float 1e-9)) "balanced" 1.0 (Sp_dag.load_imbalance m);
  (* T1 / (T1/p + Tb): 1000 / (500 + 750) at p = 2. *)
  Alcotest.(check (float 1e-9)) "predicted speedup p=2" 0.8
    (Sp_dag.predicted_speedup m 2)

(* A non-migrated spawned branch (same worker) has its gap forgiven, and a
   construct whose Fork was lost to overflow is adopted under the root:
   its work still counts, serially, with no burden. *)
let test_analyze_orphans_and_owner_pops () =
  let r =
    {
      R.dropped = 3;
      policy = "default";
      events =
        [
          R.Work { construct = 0; branch = 0; w = 0; begin_ns = 0; end_ns = 100 };
          R.Fork { id = 1; parent = 0; parent_branch = 0; w = 0; ts_ns = 100 };
          (* owner-popped: same worker, 100 ns gap — NOT burden *)
          R.Exec { construct = 1; w = 0; begin_ns = 200 };
          R.Work { construct = 1; branch = 1; w = 0; begin_ns = 200; end_ns = 300 };
          (* orphan: no Fork for construct 5 survived *)
          R.Work { construct = 5; branch = 1; w = 2; begin_ns = 0; end_ns = 400 };
        ];
    }
  in
  let m = Sp_dag.analyze r in
  Alcotest.(check int) "owner-pop gap is not burden" 0 m.Sp_dag.queue_delay_ns;
  (* root local 100 + c1 100 + orphan 400, all serial under the root. *)
  Alcotest.(check int) "orphan work counts" 600 m.Sp_dag.work_ns;
  Alcotest.(check int) "orphan is serial under root" 600 m.Sp_dag.span_ns;
  Alcotest.(check int) "burdened span has no extra charge" 600
    m.Sp_dag.burdened_span_ns;
  Alcotest.(check int) "constructs include the orphan" 2 m.Sp_dag.constructs;
  Alcotest.(check int) "dropped passes through" 3 m.Sp_dag.dropped

let test_analyze_empty_recording () =
  let m = Sp_dag.analyze { R.events = []; dropped = 0; policy = "default" } in
  Alcotest.(check int) "work" 0 m.Sp_dag.work_ns;
  Alcotest.(check int) "span" 0 m.Sp_dag.span_ns;
  Alcotest.(check (float 1e-9)) "parallelism defaults to 1" 1.0
    m.Sp_dag.parallelism;
  Alcotest.(check int) "constructs" 0 m.Sp_dag.constructs;
  Alcotest.(check bool) "no granularity buckets" true
    (m.Sp_dag.granularity = []);
  Alcotest.(check (float 1e-9)) "speedup floor" 1.0
    (Sp_dag.predicted_speedup m 4)

(* ---------- the profile driver and its JSON ---------- *)

let test_profile_json_roundtrip () =
  let r = Profile.profile ~bench:"sort" ~threads:2 ~scale:0 ~seed:7 () in
  Alcotest.(check bool) "profiled run verified" true r.Profile.verified;
  Alcotest.(check bool) "recorded some constructs" true
    (r.Profile.metrics.Sp_dag.constructs > 0);
  let path = Filename.temp_file "rpb_profile" ".json" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  Profile.write_json ~path r;
  let back = Profile.read_json path in
  Alcotest.(check string) "bench" r.Profile.bench back.Profile.bench;
  Alcotest.(check string) "input" r.Profile.input back.Profile.input;
  Alcotest.(check string) "mode" r.Profile.mode back.Profile.mode;
  Alcotest.(check int) "threads" r.Profile.threads back.Profile.threads;
  Alcotest.(check int) "seed" r.Profile.seed back.Profile.seed;
  Alcotest.(check bool) "verified" r.Profile.verified back.Profile.verified;
  Alcotest.(check bool) "worker stats round-trip" true
    (back.Profile.workers = r.Profile.workers);
  let a = r.Profile.metrics and b = back.Profile.metrics in
  Alcotest.(check int) "work" a.Sp_dag.work_ns b.Sp_dag.work_ns;
  Alcotest.(check int) "span" a.Sp_dag.span_ns b.Sp_dag.span_ns;
  Alcotest.(check int) "burdened span" a.Sp_dag.burdened_span_ns
    b.Sp_dag.burdened_span_ns;
  Alcotest.(check int) "constructs" a.Sp_dag.constructs b.Sp_dag.constructs;
  Alcotest.(check int) "tasks" a.Sp_dag.tasks b.Sp_dag.tasks;
  Alcotest.(check int) "steals" a.Sp_dag.steals b.Sp_dag.steals;
  Alcotest.(check int) "queue delay" a.Sp_dag.queue_delay_ns
    b.Sp_dag.queue_delay_ns;
  Alcotest.(check int) "dropped" a.Sp_dag.dropped b.Sp_dag.dropped;
  Alcotest.(check (list (pair int int))) "granularity" a.Sp_dag.granularity
    b.Sp_dag.granularity;
  (* The profile document is also a valid bench document at the current
     schema version: the plain Bench_json reader sees the run as one
     standard record. *)
  let docj = J.of_string (In_channel.with_open_bin path In_channel.input_all) in
  Alcotest.(check int) "current schema_version" J.schema_version
    J.(get_int (member "schema_version" docj));
  Alcotest.(check string) "kind" "profile" J.(get_str (member "kind" docj));
  (match J.records_of_doc docj with
  | [ rec_ ] ->
    Alcotest.(check string) "record bench" "sort" rec_.J.bench;
    Alcotest.(check int) "record threads" 2 rec_.J.threads
  | rs -> Alcotest.failf "expected one embedded record, got %d" (List.length rs));
  (* The human report leads with the acceptance metrics. *)
  let s = Profile.summary r in
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "summary mentions %S" needle)
        true
        (let len = String.length needle in
         let n = String.length s in
         let rec find i = i + len <= n && (String.sub s i len = needle || find (i + 1)) in
         find 0))
    [ "work"; "span"; "parallelism"; "burdened"; "speedup"; "granularity" ]

let test_profile_unknown_bench () =
  match Profile.profile ~bench:"no-such-bench" ~threads:1 ~scale:0 ~seed:0 () with
  | _ -> Alcotest.fail "accepted an unknown benchmark"
  | exception Invalid_argument _ -> ()

(* Policy attribution end-to-end: the profiled pool's policy lands in the
   recording, the report, and the written document. *)
let test_profile_policy_attribution () =
  let r = Profile.profile ~bench:"sort" ~threads:2 ~scale:0 ~seed:7 () in
  Alcotest.(check string) "default attribution" "default" r.Profile.policy;
  Alcotest.(check string) "default metrics attribution" "default"
    r.Profile.metrics.Sp_dag.policy;
  match Rpb_pool.Pool.Policy.find "work_first" with
  | None -> Alcotest.fail "work_first policy missing from the registry"
  | Some policy ->
    let r =
      Profile.profile ~policy ~bench:"sort" ~threads:2 ~scale:0 ~seed:7 ()
    in
    Alcotest.(check bool) "work_first profile verified" true
      r.Profile.verified;
    Alcotest.(check string) "report attribution" "work_first"
      r.Profile.policy;
    Alcotest.(check string) "metrics attribution" "work_first"
      r.Profile.metrics.Sp_dag.policy;
    let path = Filename.temp_file "rpb_profile_policy" ".json" in
    Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
    Profile.write_json ~path r;
    let back = Profile.read_json path in
    Alcotest.(check string) "policy survives the JSON round-trip" "work_first"
      back.Profile.policy;
    Alcotest.(check string) "metrics policy survives" "work_first"
      back.Profile.metrics.Sp_dag.policy

let () =
  Alcotest.run "rpb_obs"
    [
      ( "recorder",
        [
          Alcotest.test_case "ring overflow drops oldest" `Quick
            test_ring_overflow_drops_oldest;
          Alcotest.test_case "provenance round-trip" `Quick
            test_provenance_roundtrip;
          Alcotest.test_case "join-tree closed form" `Quick
            test_join_tree_closed_form;
          Alcotest.test_case "disabled paths stay cheap" `Quick
            test_disabled_paths_stay_cheap;
        ] );
      ( "analyzer",
        [
          Alcotest.test_case "exact arithmetic" `Quick
            test_analyze_exact_arithmetic;
          Alcotest.test_case "orphans and owner pops" `Quick
            test_analyze_orphans_and_owner_pops;
          Alcotest.test_case "empty recording" `Quick
            test_analyze_empty_recording;
        ] );
      ( "profile",
        [
          Alcotest.test_case "JSON round-trip" `Quick
            test_profile_json_roundtrip;
          Alcotest.test_case "unknown bench" `Quick test_profile_unknown_bench;
          Alcotest.test_case "policy attribution" `Quick
            test_profile_policy_attribution;
        ] );
    ]
