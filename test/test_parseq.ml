(* Tests for rpb_parseq: scan, pack, merge, sorts, radix, histogram. *)

open Rpb_parseq
open Rpb_pool

let with_pool n f =
  let pool = Pool.create ~num_workers:n () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () -> f pool)

let in_pool f = with_pool 3 (fun pool -> Pool.run pool (fun () -> f pool))

let seq_exclusive_scan a =
  let n = Array.length a in
  let out = Array.make n 0 in
  let acc = ref 0 in
  for i = 0 to n - 1 do
    out.(i) <- !acc;
    acc := !acc + a.(i)
  done;
  (out, !acc)

(* ---------- Scan ---------- *)

let test_scan_exclusive_int () =
  in_pool (fun pool ->
      let a = Array.init 10_000 (fun i -> (i mod 7) - 3) in
      let expected, etotal = seq_exclusive_scan a in
      let got, total = Scan.exclusive_int pool a in
      Alcotest.(check bool) "prefix" true (got = expected);
      Alcotest.(check int) "total" etotal total)

let test_scan_inclusive_int () =
  in_pool (fun pool ->
      let a = [| 1; 2; 3; 4 |] in
      Alcotest.(check bool) "inclusive" true
        (Scan.inclusive_int pool a = [| 1; 3; 6; 10 |]))

let test_scan_empty_and_single () =
  in_pool (fun pool ->
      let out, total = Scan.exclusive_int pool [||] in
      Alcotest.(check bool) "empty" true (out = [||] && total = 0);
      let out, total = Scan.exclusive_int pool [| 5 |] in
      Alcotest.(check bool) "single" true (out = [| 0 |] && total = 5))

let test_scan_inplace () =
  in_pool (fun pool ->
      let a = [| 2; 4; 8; 16 |] in
      let total = Scan.exclusive_inplace_int pool a in
      Alcotest.(check int) "total" 30 total;
      Alcotest.(check bool) "in place" true (a = [| 0; 2; 6; 14 |]))

let test_scan_generic_monoid () =
  in_pool (fun pool ->
      (* max-scan with identity min_int *)
      let a = [| 3; 1; 4; 1; 5; 9; 2; 6 |] in
      let got = Scan.inclusive pool max min_int a in
      Alcotest.(check bool) "running max" true
        (got = [| 3; 3; 4; 4; 5; 9; 9; 9 |]))

let prop_scan_matches_sequential =
  QCheck.Test.make ~name:"parallel scan = sequential scan" ~count:40
    QCheck.(list (int_range (-100) 100))
    (fun xs ->
      let a = Array.of_list xs in
      let expected = seq_exclusive_scan a in
      with_pool 2 (fun pool ->
          Pool.run pool (fun () -> Scan.exclusive_int pool a = expected)))

(* ---------- Pack ---------- *)

let test_pack_evens () =
  in_pool (fun pool ->
      let a = Array.init 1000 Fun.id in
      let got = Pack.pack pool (fun x -> x land 1 = 0) a in
      Alcotest.(check int) "count" 500 (Array.length got);
      Alcotest.(check bool) "contents" true
        (Rpb_prim.Util.array_for_all_i (fun i x -> x = 2 * i) got))

let test_pack_none_all () =
  in_pool (fun pool ->
      let a = [| 1; 2; 3 |] in
      Alcotest.(check bool) "none" true (Pack.pack pool (fun _ -> false) a = [||]);
      Alcotest.(check bool) "all" true (Pack.pack pool (fun _ -> true) a = a))

let test_pack_index_and_partition () =
  in_pool (fun pool ->
      let idx = Pack.pack_index pool (fun i -> i mod 3 = 0) 10 in
      Alcotest.(check bool) "indices" true (idx = [| 0; 3; 6; 9 |]);
      let yes, no = Pack.partition pool (fun x -> x > 2) [| 1; 4; 2; 5 |] in
      Alcotest.(check bool) "yes" true (yes = [| 4; 5 |]);
      Alcotest.(check bool) "no" true (no = [| 1; 2 |]))

let test_flatten () =
  in_pool (fun pool ->
      let parts = [| [| 1; 2 |]; [||]; [| 3 |]; [| 4; 5; 6 |] |] in
      Alcotest.(check bool) "flatten" true
        (Pack.flatten pool parts = [| 1; 2; 3; 4; 5; 6 |]);
      Alcotest.(check bool) "empty outer" true (Pack.flatten pool [||] = ([||] : int array));
      Alcotest.(check bool) "all empty" true
        (Pack.flatten pool [| ([||] : int array); [||] |] = [||]))

let prop_pack_matches_filter =
  QCheck.Test.make ~name:"pack = List.filter" ~count:40
    QCheck.(list small_int)
    (fun xs ->
      let a = Array.of_list xs in
      let p x = x mod 3 = 1 in
      with_pool 2 (fun pool ->
          Pool.run pool (fun () ->
              Array.to_list (Pack.pack pool p a) = List.filter p xs)))

(* ---------- Merge ---------- *)

let test_merge_basic () =
  in_pool (fun pool ->
      let a = [| 1; 3; 5; 7 |] and b = [| 2; 3; 6 |] in
      Alcotest.(check bool) "merge" true
        (Merge.merge pool ~cmp:compare a b = [| 1; 2; 3; 3; 5; 6; 7 |]))

let test_merge_empty_sides () =
  in_pool (fun pool ->
      let a = [| 1; 2 |] in
      Alcotest.(check bool) "right empty" true (Merge.merge pool ~cmp:compare a [||] = a);
      Alcotest.(check bool) "left empty" true (Merge.merge pool ~cmp:compare [||] a = a))

let test_merge_large_parallel_path () =
  in_pool (fun pool ->
      (* Big enough to exercise the divide-and-conquer path. *)
      let a = Array.init 20_000 (fun i -> 2 * i) in
      let b = Array.init 20_000 (fun i -> (2 * i) + 1) in
      let got = Merge.merge pool ~cmp:compare a b in
      Alcotest.(check int) "length" 40_000 (Array.length got);
      Alcotest.(check bool) "sorted" true (Rpb_prim.Util.is_sorted got))

let test_merge_stability () =
  in_pool (fun pool ->
      (* Pairs compared by key only; payload tells provenance. *)
      let cmp (k1, _) (k2, _) = compare k1 k2 in
      let a = [| (1, "a1"); (2, "a2") |] and b = [| (1, "b1"); (2, "b2") |] in
      let got = Merge.merge pool ~cmp a b in
      Alcotest.(check bool) "ties from a first" true
        (got = [| (1, "a1"); (1, "b1"); (2, "a2"); (2, "b2") |]))

let test_bounds () =
  let a = [| 1; 3; 3; 3; 7 |] in
  Alcotest.(check int) "lower 3" 1 (Merge.lower_bound compare a ~lo:0 ~hi:5 3);
  Alcotest.(check int) "upper 3" 4 (Merge.upper_bound compare a ~lo:0 ~hi:5 3);
  Alcotest.(check int) "lower 0" 0 (Merge.lower_bound compare a ~lo:0 ~hi:5 0);
  Alcotest.(check int) "upper 9" 5 (Merge.upper_bound compare a ~lo:0 ~hi:5 9)

(* ---------- Sort ---------- *)

let random_array seed n bound =
  let rng = Rpb_prim.Rng.create seed in
  Array.init n (fun _ -> Rpb_prim.Rng.int rng bound)

let test_merge_sort_random () =
  in_pool (fun pool ->
      let a = random_array 1 50_000 1_000_000 in
      let got = Sort.merge_sort pool ~cmp:compare a in
      let expected = Array.copy a in
      Array.sort compare expected;
      Alcotest.(check bool) "sorted" true (got = expected);
      Alcotest.(check bool) "input untouched" true (a = random_array 1 50_000 1_000_000))

let test_sample_sort_random () =
  in_pool (fun pool ->
      let a = random_array 2 50_000 1_000_000 in
      let got = Sort.sample_sort pool ~cmp:compare a in
      let expected = Array.copy a in
      Array.sort compare expected;
      Alcotest.(check bool) "sorted" true (got = expected))

let test_sample_sort_skewed_duplicates () =
  in_pool (fun pool ->
      (* Heavy duplicates stress pivot selection. *)
      let a = random_array 3 30_000 5 in
      let got = Sort.sample_sort pool ~cmp:compare a in
      Alcotest.(check bool) "sorted" true (Rpb_prim.Util.is_sorted got);
      Alcotest.(check int) "length" 30_000 (Array.length got))

let test_sort_stability () =
  in_pool (fun pool ->
      let n = 10_000 in
      let rng = Rpb_prim.Rng.create 4 in
      let a = Array.init n (fun i -> (Rpb_prim.Rng.int rng 50, i)) in
      let cmp (k1, _) (k2, _) = compare k1 k2 in
      List.iter
        (fun (name, sorter) ->
          let got = sorter pool a in
          let ok = ref true in
          for i = 1 to n - 1 do
            let k1, p1 = got.(i - 1) and k2, p2 = got.(i) in
            if k1 > k2 || (k1 = k2 && p1 > p2) then ok := false
          done;
          Alcotest.(check bool) (name ^ " stable") true !ok)
        [
          ("merge_sort", fun pool a -> Sort.merge_sort pool ~cmp a);
          ("sample_sort", fun pool a -> Sort.sample_sort pool ~cmp a);
        ])

let test_sort_edge_cases () =
  in_pool (fun pool ->
      Alcotest.(check bool) "empty" true (Sort.merge_sort pool ~cmp:compare [||] = ([||] : int array));
      Alcotest.(check bool) "single" true (Sort.merge_sort pool ~cmp:compare [| 1 |] = [| 1 |]);
      let sorted = Array.init 10_000 Fun.id in
      Alcotest.(check bool) "already sorted" true
        (Sort.sample_sort pool ~cmp:compare sorted = sorted);
      let rev = Array.init 10_000 (fun i -> 9_999 - i) in
      Alcotest.(check bool) "reverse sorted" true
        (Sort.merge_sort pool ~cmp:compare rev = sorted);
      Alcotest.(check bool) "is_sorted yes" true (Sort.is_sorted pool ~cmp:compare sorted);
      Alcotest.(check bool) "is_sorted no" false (Sort.is_sorted pool ~cmp:compare rev))

let prop_sorts_agree =
  QCheck.Test.make ~name:"merge_sort = sample_sort = Array.sort" ~count:15
    QCheck.(pair small_nat (list small_int))
    (fun (seed, xs) ->
      (* Mix generated list with deterministic noise for larger inputs. *)
      let extra = random_array seed 5000 1000 in
      let a = Array.append (Array.of_list xs) extra in
      let expected = Array.copy a in
      Array.sort compare expected;
      with_pool 2 (fun pool ->
          Pool.run pool (fun () ->
              Sort.merge_sort pool ~cmp:compare a = expected
              && Sort.sample_sort pool ~cmp:compare a = expected)))

(* ---------- Radix ---------- *)

let test_rank_by_key_is_stable_sort () =
  in_pool (fun pool ->
      let keys = [| 2; 0; 1; 0; 2; 1 |] in
      let dest = Radix.rank_by_key pool ~keys ~buckets:3 in
      (* Stable: first 0 -> 0, second 0 -> 1, first 1 -> 2 ... *)
      Alcotest.(check bool) "ranks" true (dest = [| 4; 0; 2; 1; 5; 3 |]))

let test_counting_sort () =
  in_pool (fun pool ->
      let a = random_array 5 20_000 256 in
      let got = Radix.counting_sort pool ~buckets:256 a in
      let expected = Array.copy a in
      Array.sort compare expected;
      Alcotest.(check bool) "sorted" true (got = expected))

let test_radix_sort () =
  in_pool (fun pool ->
      let a = random_array 6 20_000 1_000_000_000 in
      let got = Radix.radix_sort pool a in
      let expected = Array.copy a in
      Array.sort compare expected;
      Alcotest.(check bool) "sorted" true (got = expected))

let test_radix_sort_by_stable () =
  in_pool (fun pool ->
      let n = 5_000 in
      let rng = Rpb_prim.Rng.create 7 in
      let a = Array.init n (fun i -> (Rpb_prim.Rng.int rng 1000, i)) in
      let got = Radix.radix_sort_by pool ~key:fst a in
      let ok = ref true in
      for i = 1 to n - 1 do
        let k1, p1 = got.(i - 1) and k2, p2 = got.(i) in
        if k1 > k2 || (k1 = k2 && p1 > p2) then ok := false
      done;
      Alcotest.(check bool) "stable sorted" true !ok)

let test_radix_rejects_negative () =
  in_pool (fun pool ->
      Alcotest.check_raises "negative key"
        (Invalid_argument "Radix.radix_sort_by: negative key") (fun () ->
          ignore (Radix.radix_sort pool [| 1; -2; 3 |])))

(* ---------- Histogram ---------- *)

let test_histogram_modes_agree () =
  in_pool (fun pool ->
      let keys = random_array 8 50_000 128 in
      let expected = Histogram.histogram_seq ~keys ~buckets:128 in
      Alcotest.(check bool) "private" true
        (Histogram.histogram pool ~keys ~buckets:128 = expected);
      Alcotest.(check bool) "atomic" true
        (Histogram.histogram_atomic pool ~keys ~buckets:128 = expected);
      Alcotest.(check bool) "mutex" true
        (Histogram.histogram_mutex pool ~keys ~buckets:128 = expected))

let test_histogram_total_mass () =
  in_pool (fun pool ->
      let keys = random_array 9 10_000 64 in
      let h = Histogram.histogram pool ~keys ~buckets:64 in
      Alcotest.(check int) "mass" 10_000 (Rpb_prim.Util.array_sum h))

let test_histogram_stats_modes_agree () =
  in_pool (fun pool ->
      let n = 30_000 in
      let keys = random_array 10 n 32 in
      let values = random_array 11 n 1000 in
      let seq = Histogram.histogram_stats ~mode:Histogram.Stats_seq pool ~keys ~values ~buckets:32 in
      let mu = Histogram.histogram_stats ~mode:Histogram.Stats_mutex pool ~keys ~values ~buckets:32 in
      let pr = Histogram.histogram_stats ~mode:Histogram.Stats_private pool ~keys ~values ~buckets:32 in
      for b = 0 to 31 do
        Alcotest.(check bool) "mutex = seq" true (Histogram.stats_equal seq.(b) mu.(b));
        Alcotest.(check bool) "private = seq" true (Histogram.stats_equal seq.(b) pr.(b))
      done)

let test_histogram_stats_values () =
  in_pool (fun pool ->
      let keys = [| 0; 1; 0; 1; 0 |] in
      let values = [| 5; 10; 3; 20; 7 |] in
      let s = Histogram.histogram_stats ~mode:Histogram.Stats_private pool ~keys ~values ~buckets:2 in
      Alcotest.(check int) "count 0" 3 s.(0).Histogram.count;
      Alcotest.(check int) "total 0" 15 s.(0).Histogram.total;
      Alcotest.(check int) "min 0" 3 s.(0).Histogram.vmin;
      Alcotest.(check int) "max 0" 7 s.(0).Histogram.vmax;
      Alcotest.(check int) "count 1" 2 s.(1).Histogram.count;
      Alcotest.(check int) "total 1" 30 s.(1).Histogram.total)

let prop_histogram_matches_seq =
  QCheck.Test.make ~name:"parallel histogram = sequential" ~count:30
    QCheck.(list (int_bound 31))
    (fun xs ->
      let keys = Array.of_list xs in
      let expected = Histogram.histogram_seq ~keys ~buckets:32 in
      with_pool 2 (fun pool ->
          Pool.run pool (fun () ->
              Histogram.histogram pool ~keys ~buckets:32 = expected
              && Histogram.histogram_atomic pool ~keys ~buckets:32 = expected)))

(* ---------- Stencil ---------- *)

let test_stencil_matches_seq () =
  in_pool (fun pool ->
      let a = Array.init 500 (fun i -> float_of_int (Rpb_prim.Rng.hash64 i mod 100)) in
      let par = Stencil.jacobi_1d pool ~iterations:25 a in
      let seq = Stencil.jacobi_1d_seq ~iterations:25 a in
      Alcotest.(check bool) "parallel = sequential" true (par = seq))

let test_stencil_steady_state () =
  in_pool (fun pool ->
      (* With fixed endpoints 0 and 1, Jacobi converges to the linear ramp. *)
      let n = 32 in
      let a = Array.make n 0.0 in
      a.(n - 1) <- 1.0;
      let r = Stencil.jacobi_1d pool ~iterations:20_000 a in
      let ok = ref true in
      for i = 0 to n - 1 do
        let expected = float_of_int i /. float_of_int (n - 1) in
        if Float.abs (r.(i) -. expected) > 1e-6 then ok := false
      done;
      Alcotest.(check bool) "converges to linear ramp" true !ok)

let test_stencil_preserves_boundary () =
  in_pool (fun pool ->
      let a = [| 5.0; 1.0; 2.0; 3.0; 9.0 |] in
      let r = Stencil.jacobi_1d pool ~iterations:7 a in
      Alcotest.(check (float 0.0)) "left fixed" 5.0 r.(0);
      Alcotest.(check (float 0.0)) "right fixed" 9.0 r.(4);
      Alcotest.(check bool) "input untouched" true (a.(1) = 1.0))

let test_stencil_2d_symmetry () =
  in_pool (fun pool ->
      (* A symmetric initial grid stays symmetric. *)
      let rows = 17 and cols = 17 in
      let grid =
        Array.init (rows * cols) (fun i ->
            let r = i / cols and c = i mod cols in
            let dr = abs (r - 8) and dc = abs (c - 8) in
            float_of_int (dr + dc))
      in
      let out = Stencil.jacobi_2d pool ~iterations:9 ~rows ~cols grid in
      let ok = ref true in
      for r = 0 to rows - 1 do
        for c = 0 to cols - 1 do
          let m = out.(((rows - 1 - r) * cols) + (cols - 1 - c)) in
          if Float.abs (out.((r * cols) + c) -. m) > 1e-12 then ok := false
        done
      done;
      Alcotest.(check bool) "180-degree symmetry preserved" true !ok)

let test_stencil_2d_shape_checks () =
  in_pool (fun pool ->
      match Stencil.jacobi_2d pool ~iterations:1 ~rows:4 ~cols:4 (Array.make 7 0.0) with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "size mismatch accepted")

let () =
  Alcotest.run "rpb_parseq"
    [
      ( "scan",
        [
          Alcotest.test_case "exclusive int" `Quick test_scan_exclusive_int;
          Alcotest.test_case "inclusive int" `Quick test_scan_inclusive_int;
          Alcotest.test_case "empty/single" `Quick test_scan_empty_and_single;
          Alcotest.test_case "inplace" `Quick test_scan_inplace;
          Alcotest.test_case "generic monoid" `Quick test_scan_generic_monoid;
          QCheck_alcotest.to_alcotest prop_scan_matches_sequential;
        ] );
      ( "pack",
        [
          Alcotest.test_case "evens" `Quick test_pack_evens;
          Alcotest.test_case "none/all" `Quick test_pack_none_all;
          Alcotest.test_case "index/partition" `Quick test_pack_index_and_partition;
          Alcotest.test_case "flatten" `Quick test_flatten;
          QCheck_alcotest.to_alcotest prop_pack_matches_filter;
        ] );
      ( "merge",
        [
          Alcotest.test_case "basic" `Quick test_merge_basic;
          Alcotest.test_case "empty sides" `Quick test_merge_empty_sides;
          Alcotest.test_case "large parallel" `Quick test_merge_large_parallel_path;
          Alcotest.test_case "stability" `Quick test_merge_stability;
          Alcotest.test_case "bounds" `Quick test_bounds;
        ] );
      ( "sort",
        [
          Alcotest.test_case "merge_sort random" `Quick test_merge_sort_random;
          Alcotest.test_case "sample_sort random" `Quick test_sample_sort_random;
          Alcotest.test_case "sample_sort duplicates" `Quick
            test_sample_sort_skewed_duplicates;
          Alcotest.test_case "stability" `Quick test_sort_stability;
          Alcotest.test_case "edge cases" `Quick test_sort_edge_cases;
          QCheck_alcotest.to_alcotest prop_sorts_agree;
        ] );
      ( "radix",
        [
          Alcotest.test_case "rank stable" `Quick test_rank_by_key_is_stable_sort;
          Alcotest.test_case "counting sort" `Quick test_counting_sort;
          Alcotest.test_case "radix sort" `Quick test_radix_sort;
          Alcotest.test_case "radix_sort_by stable" `Quick test_radix_sort_by_stable;
          Alcotest.test_case "negative rejected" `Quick test_radix_rejects_negative;
        ] );
      ( "stencil",
        [
          Alcotest.test_case "par = seq" `Quick test_stencil_matches_seq;
          Alcotest.test_case "steady state" `Quick test_stencil_steady_state;
          Alcotest.test_case "boundary fixed" `Quick test_stencil_preserves_boundary;
          Alcotest.test_case "2d symmetry" `Quick test_stencil_2d_symmetry;
          Alcotest.test_case "2d shape checks" `Quick test_stencil_2d_shape_checks;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "modes agree" `Quick test_histogram_modes_agree;
          Alcotest.test_case "total mass" `Quick test_histogram_total_mass;
          Alcotest.test_case "stats modes agree" `Quick
            test_histogram_stats_modes_agree;
          Alcotest.test_case "stats values" `Quick test_histogram_stats_values;
          QCheck_alcotest.to_alcotest prop_histogram_matches_seq;
        ] );
    ]
