(* Tests for the work-stealing deque and the fork-join pool. *)

open Rpb_pool

let with_pool n f =
  let pool = Pool.create ~num_workers:n () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () -> f pool)

(* ---------- Ws_deque ---------- *)

let test_deque_lifo_owner () =
  let d = Ws_deque.create () in
  Alcotest.(check bool) "empty" true (Ws_deque.is_empty d);
  Ws_deque.push d 1;
  Ws_deque.push d 2;
  Ws_deque.push d 3;
  Alcotest.(check int) "size" 3 (Ws_deque.size d);
  Alcotest.(check (option int)) "pop 3" (Some 3) (Ws_deque.pop d);
  Alcotest.(check (option int)) "pop 2" (Some 2) (Ws_deque.pop d);
  Alcotest.(check (option int)) "pop 1" (Some 1) (Ws_deque.pop d);
  Alcotest.(check (option int)) "pop empty" None (Ws_deque.pop d)

let test_deque_fifo_thief () =
  let d = Ws_deque.create () in
  for i = 1 to 5 do Ws_deque.push d i done;
  Alcotest.(check (option int)) "steal 1" (Some 1) (Ws_deque.steal d);
  Alcotest.(check (option int)) "steal 2" (Some 2) (Ws_deque.steal d);
  Alcotest.(check (option int)) "pop 5" (Some 5) (Ws_deque.pop d)

let test_deque_growth () =
  let d = Ws_deque.create ~capacity:2 () in
  let n = 1000 in
  for i = 0 to n - 1 do Ws_deque.push d i done;
  Alcotest.(check int) "size" n (Ws_deque.size d);
  for i = n - 1 downto 0 do
    Alcotest.(check (option int)) "pop order" (Some i) (Ws_deque.pop d)
  done

let test_deque_interleaved () =
  let d = Ws_deque.create ~capacity:4 () in
  (* Push/pop/steal interleaving that forces wraparound. *)
  for round = 0 to 99 do
    Ws_deque.push d (2 * round);
    Ws_deque.push d ((2 * round) + 1);
    (match Ws_deque.steal d with
     | Some _ -> ()
     | None -> Alcotest.fail "steal should succeed");
    match Ws_deque.pop d with
    | Some _ -> ()
    | None -> Alcotest.fail "pop should succeed"
  done;
  Alcotest.(check bool) "drained" true (Ws_deque.is_empty d)

(* Concurrent correctness: every pushed element is consumed exactly once,
   whether by the owner's pops or by thieves' steals. *)
let test_deque_concurrent_no_dup_no_loss () =
  let d = Ws_deque.create () in
  let n = 50_000 in
  let consumed = Rpb_prim.Atomic_array.make n 0 in
  let thieves_done = Atomic.make 0 in
  let num_thieves = 3 in
  let thief () =
    Domain.spawn (fun () ->
        let rec go () =
          match Ws_deque.steal d with
          | Some x ->
            ignore (Rpb_prim.Atomic_array.fetch_and_add consumed x 1);
            go ()
          | None ->
            if Atomic.get thieves_done = 0 then begin
              Domain.cpu_relax ();
              go ()
            end
        in
        go ())
  in
  let ds = List.init num_thieves (fun _ -> thief ()) in
  (* Owner: pushes everything, interleaving pops. *)
  for i = 0 to n - 1 do
    Ws_deque.push d i;
    if i land 3 = 0 then
      match Ws_deque.pop d with
      | Some x -> ignore (Rpb_prim.Atomic_array.fetch_and_add consumed x 1)
      | None -> ()
  done;
  (* Owner drains the rest. *)
  let rec drain () =
    match Ws_deque.pop d with
    | Some x ->
      ignore (Rpb_prim.Atomic_array.fetch_and_add consumed x 1);
      drain ()
    | None -> ()
  in
  drain ();
  Atomic.set thieves_done 1;
  List.iter Domain.join ds;
  let bad = ref 0 in
  for i = 0 to n - 1 do
    if Rpb_prim.Atomic_array.get consumed i <> 1 then incr bad
  done;
  Alcotest.(check int) "each element consumed exactly once" 0 !bad

(* ---------- Ws_deque.steal_half ---------- *)

let test_steal_half_empty () =
  let d = Ws_deque.create () in
  Alcotest.(check (list int)) "empty deque yields []" []
    (Ws_deque.steal_half d);
  Ws_deque.push d 1;
  ignore (Ws_deque.pop d);
  Alcotest.(check (list int)) "drained deque yields []" []
    (Ws_deque.steal_half d)

let test_steal_half_singleton () =
  let d = Ws_deque.create () in
  Ws_deque.push d 7;
  Alcotest.(check (list int)) "one element still transfers" [ 7 ]
    (Ws_deque.steal_half d);
  Alcotest.(check bool) "now empty" true (Ws_deque.is_empty d)

let test_steal_half_ordering () =
  let d = Ws_deque.create () in
  for i = 1 to 8 do
    Ws_deque.push d i
  done;
  (* ceil(8/2) = 4 oldest elements, in FIFO (steal) order. *)
  Alcotest.(check (list int)) "oldest half, top-first" [ 1; 2; 3; 4 ]
    (Ws_deque.steal_half d);
  Alcotest.(check int) "half left behind" 4 (Ws_deque.size d);
  Alcotest.(check (option int)) "owner end untouched" (Some 8)
    (Ws_deque.pop d);
  (* ceil(3/2) = 2 of the remaining 5..7. *)
  Alcotest.(check (list int)) "next batch" [ 5; 6 ] (Ws_deque.steal_half d)

(* Same exactly-once contract as the single-steal stress test, with thieves
   taking whole batches while the owner keeps pushing and popping. *)
let test_steal_half_concurrent_no_dup_no_loss () =
  let d = Ws_deque.create () in
  let n = 50_000 in
  let consumed = Rpb_prim.Atomic_array.make n 0 in
  let thieves_done = Atomic.make 0 in
  let num_thieves = 3 in
  let thief () =
    Domain.spawn (fun () ->
        let rec go () =
          match Ws_deque.steal_half d with
          | _ :: _ as batch ->
            List.iter
              (fun x -> ignore (Rpb_prim.Atomic_array.fetch_and_add consumed x 1))
              batch;
            go ()
          | [] ->
            if Atomic.get thieves_done = 0 then begin
              Domain.cpu_relax ();
              go ()
            end
        in
        go ())
  in
  let ds = List.init num_thieves (fun _ -> thief ()) in
  for i = 0 to n - 1 do
    Ws_deque.push d i;
    if i land 3 = 0 then
      match Ws_deque.pop d with
      | Some x -> ignore (Rpb_prim.Atomic_array.fetch_and_add consumed x 1)
      | None -> ()
  done;
  let rec drain () =
    match Ws_deque.pop d with
    | Some x ->
      ignore (Rpb_prim.Atomic_array.fetch_and_add consumed x 1);
      drain ()
    | None -> ()
  in
  drain ();
  Atomic.set thieves_done 1;
  List.iter Domain.join ds;
  let bad = ref 0 in
  for i = 0 to n - 1 do
    if Rpb_prim.Atomic_array.get consumed i <> 1 then incr bad
  done;
  Alcotest.(check int) "each element consumed exactly once" 0 !bad

(* ---------- Pool ---------- *)

let test_pool_run_returns () =
  with_pool 2 (fun pool ->
      Alcotest.(check int) "result" 42 (Pool.run pool (fun () -> 42)))

let test_pool_async_await () =
  with_pool 3 (fun pool ->
      Pool.run pool (fun () ->
          let p = Pool.async pool (fun () -> 6 * 7) in
          Alcotest.(check int) "await" 42 (Pool.await pool p)))

let test_pool_join () =
  with_pool 3 (fun pool ->
      Pool.run pool (fun () ->
          let a, b = Pool.join pool (fun () -> "left") (fun () -> "right") in
          Alcotest.(check string) "left" "left" a;
          Alcotest.(check string) "right" "right" b))

let test_pool_exception_propagates () =
  with_pool 2 (fun pool ->
      Alcotest.check_raises "exn from task" (Failure "boom") (fun () ->
          Pool.run pool (fun () ->
              let p = Pool.async pool (fun () -> failwith "boom") in
              Pool.await pool p)))

let test_pool_parallel_for_covers_range () =
  with_pool 4 (fun pool ->
      let n = 10_000 in
      let hits = Rpb_prim.Atomic_array.make n 0 in
      Pool.run pool (fun () ->
          Pool.parallel_for ~start:0 ~finish:n
            ~body:(fun i -> ignore (Rpb_prim.Atomic_array.fetch_and_add hits i 1))
            pool);
      let bad = ref 0 in
      for i = 0 to n - 1 do
        if Rpb_prim.Atomic_array.get hits i <> 1 then incr bad
      done;
      Alcotest.(check int) "each index exactly once" 0 !bad)

let test_pool_parallel_for_empty_range () =
  with_pool 2 (fun pool ->
      Pool.run pool (fun () ->
          Pool.parallel_for ~start:5 ~finish:5
            ~body:(fun _ -> Alcotest.fail "body must not run")
            pool;
          Pool.parallel_for ~start:5 ~finish:3
            ~body:(fun _ -> Alcotest.fail "body must not run")
            pool))

let test_pool_parallel_for_reduce_sum () =
  with_pool 4 (fun pool ->
      let n = 100_000 in
      let total =
        Pool.run pool (fun () ->
            Pool.parallel_for_reduce ~start:0 ~finish:n ~body:Fun.id
              ~combine:( + ) ~init:0 pool)
      in
      Alcotest.(check int) "gauss sum" (n * (n - 1) / 2) total)

let test_pool_parallel_for_reduce_grain1 () =
  with_pool 2 (fun pool ->
      let total =
        Pool.run pool (fun () ->
            Pool.parallel_for_reduce ~grain:1 ~start:0 ~finish:64
              ~body:Fun.id ~combine:( + ) ~init:0 pool)
      in
      Alcotest.(check int) "sum with grain 1" (64 * 63 / 2) total)

let test_pool_parallel_chunks_partition () =
  with_pool 3 (fun pool ->
      let n = 1003 in
      let seen = Rpb_prim.Atomic_array.make n 0 in
      Pool.run pool (fun () ->
          Pool.parallel_chunks ~grain:64 ~start:0 ~finish:n
            ~body:(fun lo hi ->
              Alcotest.(check bool) "nonempty chunk" true (lo < hi);
              for i = lo to hi - 1 do
                ignore (Rpb_prim.Atomic_array.fetch_and_add seen i 1)
              done)
            pool);
      for i = 0 to n - 1 do
        if Rpb_prim.Atomic_array.get seen i <> 1 then
          Alcotest.failf "index %d covered %d times" i
            (Rpb_prim.Atomic_array.get seen i)
      done)

let test_pool_nested_parallel_for () =
  with_pool 4 (fun pool ->
      let n = 64 in
      let acc = Rpb_prim.Atomic_array.make 1 0 in
      Pool.run pool (fun () ->
          Pool.parallel_for ~start:0 ~finish:n
            ~body:(fun _ ->
              Pool.parallel_for ~start:0 ~finish:n
                ~body:(fun _ ->
                  ignore (Rpb_prim.Atomic_array.fetch_and_add acc 0 1))
                pool)
            pool);
      Alcotest.(check int) "nested count" (n * n) (Rpb_prim.Atomic_array.get acc 0))

let test_pool_recursive_fib () =
  (* Divide-and-conquer through rayon-style join (paper Listing 9 shape). *)
  with_pool 4 (fun pool ->
      let rec fib n =
        if n < 2 then n
        else if n < 10 then fib (n - 1) + fib (n - 2)
        else
          let a, b =
            Pool.join pool (fun () -> fib (n - 1)) (fun () -> fib (n - 2))
          in
          a + b
      in
      let x = Pool.run pool (fun () -> fib 20) in
      Alcotest.(check int) "fib 20" 6765 x)

let test_pool_single_worker_sequential () =
  with_pool 1 (fun pool ->
      let n = 1000 in
      let acc = ref 0 in
      Pool.run pool (fun () ->
          Pool.parallel_for ~start:0 ~finish:n ~body:(fun i -> acc := !acc + i) pool);
      Alcotest.(check int) "sequential fallback" (n * (n - 1) / 2) !acc)

let test_pool_outside_run_sequential () =
  with_pool 2 (fun pool ->
      (* join outside run degrades to sequential execution. *)
      let a, b = Pool.join pool (fun () -> 1) (fun () -> 2) in
      Alcotest.(check (pair int int)) "outside join" (1, 2) (a, b))

let test_pool_current_worker () =
  with_pool 2 (fun pool ->
      Alcotest.(check (option int)) "outside" None (Pool.current_worker pool);
      Pool.run pool (fun () ->
          Alcotest.(check (option int)) "inside" (Some 0) (Pool.current_worker pool)))

let test_pool_reuse_after_run () =
  with_pool 2 (fun pool ->
      for round = 1 to 5 do
        let x = Pool.run pool (fun () -> round * 2) in
        Alcotest.(check int) "round result" (round * 2) x
      done)

let test_pool_shutdown_rejects () =
  let pool = Pool.create ~num_workers:2 () in
  Pool.shutdown pool;
  Pool.shutdown pool (* idempotent *);
  Alcotest.check_raises "run after shutdown" Pool.Shutdown (fun () ->
      ignore (Pool.run pool (fun () -> 0)))

let test_pool_many_small_tasks () =
  with_pool 4 (fun pool ->
      let n = 2000 in
      Pool.run pool (fun () ->
          let ps = List.init n (fun i -> Pool.async pool (fun () -> i)) in
          let total = List.fold_left (fun acc p -> acc + Pool.await pool p) 0 ps in
          Alcotest.(check int) "all tasks ran" (n * (n - 1) / 2) total))

(* ---------- scheduler telemetry ---------- *)

(* The per-worker counters must aggregate consistently: every total exposed
   by [Stats] equals the sum of its per-worker column. *)
let test_stats_per_worker_sums () =
  with_pool 4 (fun pool ->
      let before = Pool.Stats.capture pool in
      Pool.run pool (fun () ->
          Pool.parallel_for ~grain:1 ~start:0 ~finish:5_000
            ~body:(fun _ -> ())
            pool);
      let after = Pool.Stats.capture pool in
      let s = Pool.Stats.diff ~before ~after in
      Alcotest.(check int) "worker count" 4 s.Pool.Stats.num_workers;
      Alcotest.(check int) "per-worker array" 4
        (Array.length s.Pool.Stats.per_worker);
      let sum f =
        Array.fold_left (fun acc w -> acc + f w) 0 s.Pool.Stats.per_worker
      in
      Alcotest.(check int) "tasks total = sum"
        (Pool.Stats.tasks_executed s)
        (sum (fun w -> w.Pool.Stats.tasks_executed));
      Alcotest.(check int) "steals total = sum" (Pool.Stats.steals_ok s)
        (sum (fun w -> w.Pool.Stats.steals_ok));
      Alcotest.(check int) "failed steals total = sum"
        (Pool.Stats.steals_failed s)
        (sum (fun w -> w.Pool.Stats.steals_failed));
      Alcotest.(check int) "idle total = sum"
        (Pool.Stats.idle_episodes s)
        (sum (fun w -> w.Pool.Stats.idle_episodes));
      Alcotest.(check bool) "fork-join actually scheduled tasks" true
        (Pool.Stats.tasks_executed s > 0);
      Alcotest.(check bool) "worker ids are 0..n-1" true
        (Array.for_all
           (fun i -> s.Pool.Stats.per_worker.(i).Pool.Stats.worker_id = i)
           (Array.init 4 Fun.id)))

let test_stats_single_worker_no_steals () =
  with_pool 1 (fun pool ->
      Pool.Stats.reset pool;
      Pool.run pool (fun () ->
          Pool.parallel_for ~grain:1 ~start:0 ~finish:10_000
            ~body:(fun _ -> ())
            pool);
      let s = Pool.Stats.capture pool in
      Alcotest.(check int) "no steals with one worker" 0 (Pool.Stats.steals_ok s);
      Alcotest.(check int) "no failed steals with one worker" 0
        (Pool.Stats.steals_failed s))

let test_stats_diff_and_reset () =
  with_pool 3 (fun pool ->
      Pool.run pool (fun () ->
          Pool.parallel_for ~grain:1 ~start:0 ~finish:1_000
            ~body:(fun _ -> ())
            pool);
      let a = Pool.Stats.capture pool in
      (* No work between two snapshots: the diff must be all zeros. *)
      let b = Pool.Stats.capture pool in
      let d = Pool.Stats.diff ~before:a ~after:b in
      Alcotest.(check int) "quiescent diff tasks" 0 (Pool.Stats.tasks_executed d);
      Alcotest.(check int) "quiescent diff steals" 0 (Pool.Stats.steals_ok d);
      Pool.Stats.reset pool;
      let z = Pool.Stats.capture pool in
      Alcotest.(check int) "reset zeroes tasks" 0 (Pool.Stats.tasks_executed z);
      Alcotest.(check int) "reset zeroes depth" 0 (Pool.Stats.max_deque_depth z))

(* Pins the intended [max_deque_depth] semantics across repeated
   bench-iteration loops (the `rpb stats`/measure pattern: snapshot, work,
   snapshot, diff).  Monotonic counters are window-relative after [diff];
   the depth high-water mark deliberately is NOT — [diff] keeps the [after]
   snapshot's lifetime value (a high-water mark of a window that did less
   work than a previous one would under-report the deque pressure the pool
   has proven it can reach), and only [reset] rearms it. *)
let test_stats_depth_high_water_semantics () =
  with_pool 3 (fun pool ->
      let deep () =
        Pool.run pool (fun () ->
            Pool.parallel_for ~grain:1 ~start:0 ~finish:2_000
              ~body:(fun _ -> ())
              pool)
      in
      deep ();
      let a = Pool.Stats.capture pool in
      let depth_after_work = Pool.Stats.max_deque_depth a in
      Alcotest.(check bool) "fork-join reached some depth" true
        (depth_after_work > 0);
      (* A quiescent window: monotonic counters diff to zero, but the
         high-water mark keeps reporting the lifetime value. *)
      let b = Pool.Stats.capture pool in
      let d = Pool.Stats.diff ~before:a ~after:b in
      Alcotest.(check int) "quiescent window ran nothing" 0
        (Pool.Stats.tasks_executed d);
      Alcotest.(check int) "high-water survives diff (lifetime, not window)"
        depth_after_work
        (Pool.Stats.max_deque_depth d);
      (* Another iteration can only raise it: the mark is monotonic until
         reset, never per-window. *)
      deep ();
      let c = Pool.Stats.capture pool in
      let d2 = Pool.Stats.diff ~before:b ~after:c in
      Alcotest.(check bool) "next window's mark is >= previous" true
        (Pool.Stats.max_deque_depth d2 >= depth_after_work);
      (* [reset] is the only rearm point. *)
      Pool.Stats.reset pool;
      Alcotest.(check int) "reset rearms the mark" 0
        (Pool.Stats.max_deque_depth (Pool.Stats.capture pool)))

let test_stats_compat_string () =
  with_pool 2 (fun pool ->
      Pool.run pool (fun () ->
          let p = Pool.async pool (fun () -> ()) in
          Pool.await pool p);
      let s = (Pool.stats [@warning "-3"]) pool in
      Alcotest.(check bool) "legacy one-line shape" true
        (String.length s > 0
        && String.sub s 0 8 = "workers="
        &&
        match String.index_opt s ' ' with
        | Some _ -> true
        | None -> false))

let test_trace_span_records_events () =
  with_pool 2 (fun pool ->
      Pool.Trace.start ();
      Alcotest.(check bool) "enabled" true (Pool.Trace.enabled ());
      Pool.run pool (fun () ->
          Pool.Trace.span pool "outer" (fun () ->
              Pool.parallel_for ~grain:8 ~start:0 ~finish:256
                ~body:(fun _ -> ())
                pool));
      let path = Filename.temp_file "rpb_trace" ".json" in
      let n = Pool.Trace.stop_to_file path in
      Alcotest.(check bool) "disabled after stop" false (Pool.Trace.enabled ());
      Alcotest.(check bool) "recorded the span (and maybe tasks)" true (n >= 1);
      let ic = open_in path in
      let len = in_channel_length ic in
      let body = really_input_string ic len in
      close_in ic;
      Sys.remove path;
      Alcotest.(check bool) "names the span" true
        (let re = "outer" in
         let rec find i =
           i + String.length re <= String.length body
           && (String.sub body i (String.length re) = re || find (i + 1))
         in
         find 0))

(* ---------- failure semantics ---------- *)

exception Boom of int
exception Combine_boom

(* A successful run on the same pool after a failure: the reusability check
   every failure test ends with. *)
let assert_reusable pool =
  let x =
    Pool.run pool (fun () ->
        Pool.parallel_for_reduce ~grain:16 ~start:0 ~finish:10_000 ~body:Fun.id
          ~combine:( + ) ~init:0 pool)
  in
  Alcotest.(check int) "pool reusable after failure" (10_000 * 9_999 / 2) x

let test_fail_join_branch () =
  with_pool 4 (fun pool ->
      (* Exception in the forked branch (g, executed as a task). *)
      Alcotest.check_raises "forked branch" (Boom 2) (fun () ->
          ignore
            (Pool.run pool (fun () ->
                 Pool.join pool (fun () -> 1) (fun () -> raise (Boom 2)))));
      (* Exception in the inline branch (f). *)
      Alcotest.check_raises "inline branch" (Boom 1) (fun () ->
          ignore
            (Pool.run pool (fun () ->
                 Pool.join pool (fun () -> raise (Boom 1)) (fun () -> 2))));
      assert_reusable pool)

let test_fail_parallel_for_leaf () =
  with_pool 4 (fun pool ->
      let n = 1_000 in
      let executed = Atomic.make 0 in
      (match
         Pool.run pool (fun () ->
             Pool.parallel_for ~grain:1 ~start:0 ~finish:n
               ~body:(fun i ->
                 if i = 0 then raise (Boom 0);
                 Atomic.incr executed;
                 Unix.sleepf 1e-4)
               pool)
       with
      | () -> Alcotest.fail "expected Boom"
      | exception Boom 0 -> ()
      | exception e -> raise e);
      (* Cancellation abandons sibling leaves: the failing leaf runs early
         (worker 0 descends left-first), so nowhere near all of the other
         999 bodies — each 100 us long — may have executed. *)
      Alcotest.(check bool) "sibling work abandoned" true
        (Atomic.get executed < n - 1);
      (* Drain guarantee: nothing of the failed scope still runs after [run]
         has re-raised. *)
      let after = Atomic.get executed in
      Unix.sleepf 0.05;
      Alcotest.(check int) "no task runs after run returns" after
        (Atomic.get executed);
      assert_reusable pool)

let test_fail_reduce_combine () =
  with_pool 4 (fun pool ->
      Alcotest.check_raises "combine raises" Combine_boom (fun () ->
          ignore
            (Pool.run pool (fun () ->
                 Pool.parallel_for_reduce ~grain:10 ~start:0 ~finish:1_000
                   ~body:Fun.id
                   ~combine:(fun _ _ -> raise Combine_boom)
                   ~init:0 pool)));
      assert_reusable pool)

let test_fail_many_leaves_surfaces_one () =
  (* Every leaf raises; exactly one of them must surface (the first recorded
     one), not [Cancelled] or a secondary artifact. *)
  with_pool 4 (fun pool ->
      (match
         Pool.run pool (fun () ->
             Pool.parallel_for ~grain:1 ~start:0 ~finish:256
               ~body:(fun i -> raise (Boom i))
               pool)
       with
      | () -> Alcotest.fail "expected Boom"
      | exception Boom _ -> ()
      | exception e ->
        Alcotest.failf "wrong exception surfaced: %s" (Printexc.to_string e));
      assert_reusable pool)

let test_fail_async_awaited_off_pool () =
  with_pool 2 (fun pool ->
      (* An unstructured failure stays private to its promise: the run
         completes, and the exception surfaces at [await] — here from off
         the pool, after [run] has drained and returned. *)
      let p = Pool.run pool (fun () -> Pool.async pool (fun () -> raise (Boom 7))) in
      Alcotest.(check bool) "promise resolved by run's drain" true
        (Pool.try_result p <> None);
      Alcotest.check_raises "await off-pool re-raises" (Boom 7) (fun () ->
          ignore (Pool.await pool p));
      assert_reusable pool)

let test_fail_caught_in_run_body_continues () =
  (* Catching a structured failure at the run-body level leaves the run
     healthy: later parallel calls in the same run work. *)
  with_pool 4 (fun pool ->
      let x =
        Pool.run pool (fun () ->
            (try
               Pool.parallel_for ~grain:1 ~start:0 ~finish:64
                 ~body:(fun i -> if i = 13 then raise (Boom 13))
                 pool
             with Boom 13 -> ());
            Pool.parallel_for_reduce ~grain:4 ~start:0 ~finish:1_000
              ~body:Fun.id ~combine:( + ) ~init:0 pool)
      in
      Alcotest.(check int) "run continues after caught failure"
        (1_000 * 999 / 2) x)

let test_shutdown_fails_pending_promises () =
  let pool = Pool.create ~num_workers:2 () in
  (* Queue unstructured work from off the pool, then shut down underneath
     it: every promise must be resolved — executed or failed with
     [Shutdown] — so no awaiter can poll forever. *)
  let ps = List.init 64 (fun i -> Pool.async pool (fun () -> Unix.sleepf 1e-3; i)) in
  Pool.shutdown pool;
  List.iter
    (fun p ->
      match Pool.try_result p with
      | None -> Alcotest.fail "promise stranded by shutdown"
      | Some (Ok _) | Some (Error Pool.Shutdown) -> ()
      | Some (Error e) -> raise e)
    ps

let test_run_deadline_stalls () =
  with_pool 4 (fun pool ->
      let t0 = Unix.gettimeofday () in
      (match
         Pool.run ~deadline:0.2 pool (fun () ->
             (* ~2.5 s of sleepy leaves across 4 workers: cannot finish
                within the deadline, but every leaf is short, so the
                watchdog's cancel is observed promptly. *)
             Pool.parallel_for ~grain:1 ~start:0 ~finish:50
               ~body:(fun _ -> Unix.sleepf 0.05)
               pool)
       with
      | () -> Alcotest.fail "expected Stalled"
      | exception Pool.Stalled msg ->
        Alcotest.(check bool) "dump mentions the deadline" true
          (String.length msg > 0)
      | exception e -> raise e);
      let elapsed = Unix.gettimeofday () -. t0 in
      Alcotest.(check bool) "bounded well below the full runtime" true
        (elapsed < 2.0);
      assert_reusable pool)

let test_run_deadline_completes () =
  with_pool 2 (fun pool ->
      let x =
        Pool.run ~deadline:30. pool (fun () ->
            Pool.parallel_for_reduce ~grain:8 ~start:0 ~finish:1_000
              ~body:Fun.id ~combine:( + ) ~init:0 pool)
      in
      Alcotest.(check int) "deadline run completes" (1_000 * 999 / 2) x)

(* ---------- shared timer wheel ---------- *)

let test_deadline_runs_share_timer_domain () =
  with_pool 2 (fun pool ->
      (* The first deadline-bearing run may lazily spawn the one shared
         timer domain; after that, watchdogs must be timer entries, not
         domains. *)
      Pool.run ~deadline:30. pool (fun () -> ());
      let before = Pool.Timer.domains_spawned () in
      for _ = 1 to 1_000 do
        Pool.run ~deadline:30. pool (fun () -> ())
      done;
      Alcotest.(check int) "domains spawned by 1000 deadline runs" 0
        (Pool.Timer.domains_spawned () - before))

let test_timer_schedule_fires () =
  let fired = Atomic.make false in
  let _h =
    Pool.Timer.schedule ~delay_s:0.02 (fun () -> Atomic.set fired true)
  in
  let give_up = Unix.gettimeofday () +. 5.0 in
  while (not (Atomic.get fired)) && Unix.gettimeofday () < give_up do
    Unix.sleepf 0.005
  done;
  Alcotest.(check bool) "timer fired" true (Atomic.get fired)

let test_timer_cancel_prevents_fire () =
  let fired = Atomic.make false in
  let h =
    Pool.Timer.schedule ~delay_s:0.15 (fun () -> Atomic.set fired true)
  in
  Pool.Timer.cancel h;
  Unix.sleepf 0.25;
  Alcotest.(check bool) "cancelled timer never fired" false (Atomic.get fired)

let test_timer_ordering () =
  let order = Atomic.make [] in
  let push x = Atomic.set order (x :: Atomic.get order) in
  let _b = Pool.Timer.schedule ~delay_s:0.08 (fun () -> push "b") in
  let _a = Pool.Timer.schedule ~delay_s:0.02 (fun () -> push "a") in
  let give_up = Unix.gettimeofday () +. 5.0 in
  while List.length (Atomic.get order) < 2 && Unix.gettimeofday () < give_up do
    Unix.sleepf 0.005
  done;
  Alcotest.(check (list string)) "fired in deadline order" [ "b"; "a" ]
    (Atomic.get order)

let test_cancel_run_from_other_thread () =
  with_pool 2 (fun pool ->
      let th =
        Thread.create
          (fun () ->
            Unix.sleepf 0.05;
            Pool.cancel_run pool Pool.Cancelled)
          ()
      in
      (match
         Fun.protect
           ~finally:(fun () -> Thread.join th)
           (fun () ->
             Pool.run pool (fun () ->
                 Pool.parallel_for ~grain:1 ~start:0 ~finish:10_000
                   ~body:(fun _ -> Unix.sleepf 0.001)
                   pool))
       with
      | () -> Alcotest.fail "expected Cancelled"
      | exception Pool.Cancelled -> ()
      | exception e -> raise e);
      assert_reusable pool)

(* ---------- fault injection ---------- *)

let test_fault_off_by_default () =
  Alcotest.(check bool) "disarmed" false (Pool.Fault.armed ())

let test_fault_task_exn_injected () =
  with_pool 4 (fun pool ->
      Pool.Fault.enable { Pool.Fault.off with seed = 7; task_exn = 1.0 };
      Fun.protect ~finally:Pool.Fault.disable @@ fun () ->
      (match
         Pool.run pool (fun () ->
             Pool.parallel_for ~grain:1 ~start:0 ~finish:100
               ~body:(fun _ -> ())
               pool)
       with
      | () ->
        (* Legal only if no task was ever forked (all inline) — but with
           p = 1.0 every forked task raises, so demand injections below. *)
        ()
      | exception Pool.Fault.Injected _ -> ()
      | exception e -> raise e);
      let c = Pool.Fault.counts () in
      Alcotest.(check bool) "task injections fired" true (c.Pool.Fault.task_exns > 0);
      Pool.Fault.disable ();
      assert_reusable pool)

let test_fault_delays_keep_results () =
  with_pool 4 (fun pool ->
      Pool.Fault.enable
        { Pool.Fault.off with
          seed = 11;
          steal_delay = 0.5;
          worker_stall = 0.2;
          delay_us = 100 };
      Fun.protect ~finally:Pool.Fault.disable @@ fun () ->
      let x =
        Pool.run pool (fun () ->
            Pool.parallel_for_reduce ~grain:4 ~start:0 ~finish:5_000
              ~body:Fun.id ~combine:( + ) ~init:0 pool)
      in
      Alcotest.(check int) "delays never change results" (5_000 * 4_999 / 2) x;
      let c = Pool.Fault.counts () in
      Alcotest.(check bool) "delay/stall injections fired" true
        (c.Pool.Fault.steal_delays + c.Pool.Fault.worker_stalls > 0))

let test_fault_spawn_degrades () =
  Pool.Fault.enable { Pool.Fault.off with seed = 13; spawn_fail = 1.0 };
  let pool =
    Fun.protect ~finally:Pool.Fault.disable (fun () ->
        Pool.create ~num_workers:4 ())
  in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
  let s = Pool.Stats.capture pool in
  Alcotest.(check int) "requested recorded" 4 s.Pool.Stats.requested_workers;
  Alcotest.(check bool) "degraded below request" true
    (s.Pool.Stats.num_workers < 4);
  Alcotest.(check bool) "degradation shown in summary" true
    (let sum = Pool.Stats.summary s in
     let re = "requested" in
     let rec find i =
       i + String.length re <= String.length sum
       && (String.sub sum i (String.length re) = re || find (i + 1))
     in
     find 0);
  (* The degraded pool still computes correctly. *)
  let x =
    Pool.run pool (fun () ->
        Pool.parallel_for_reduce ~grain:16 ~start:0 ~finish:10_000 ~body:Fun.id
          ~combine:( + ) ~init:0 pool)
  in
  Alcotest.(check int) "degraded pool correct" (10_000 * 9_999 / 2) x

(* ---------- scheduling policies ---------- *)

let test_policy_registry () =
  let module Policy = Pool.Policy in
  let names = Policy.names () in
  Alcotest.(check string) "default leads the registry" "default"
    (List.hd names);
  Alcotest.(check int) "names are unique" (List.length names)
    (List.length (List.sort_uniq compare names));
  List.iter
    (fun n ->
      match Policy.find n with
      | Some p -> Alcotest.(check string) "find round-trips" n p.Policy.name
      | None -> Alcotest.failf "policy %s not findable by name" n)
    names;
  Alcotest.(check bool) "unknown name is None" true
    (Policy.find "bogus" = None)

(* The zero-overhead-by-default contract: the default policy's fields are
   exactly the constants the scheduler hardwired before policies existed. *)
let test_policy_default_is_prepolicy_constants () =
  let module Policy = Pool.Policy in
  let d = Policy.default in
  Alcotest.(check bool) "steal-one" true
    (d.Policy.steal_amount = Policy.Steal_one);
  Alcotest.(check bool) "help-first" true
    (d.Policy.fork_order = Policy.Help_first);
  Alcotest.(check bool) "random victim" true
    (d.Policy.victim_selection = Policy.Random_victim);
  (* The splitter/grain fields joined the record later; the default must
     still decompose exactly as the pre-policy code did — eager recursion
     with grain = max 1 (n / (8 * workers)), no forced grain. *)
  Alcotest.(check bool) "eager splitter" true
    (d.Policy.splitter = Policy.Eager_grain);
  Alcotest.(check int) "grain factor" 8 d.Policy.grain_factor;
  Alcotest.(check bool) "no fixed grain" true (d.Policy.fixed_grain = None);
  Alcotest.(check int) "spin budget" 64 d.Policy.spin_budget;
  Alcotest.(check (float 0.)) "idle sleep" 5e-5 d.Policy.idle_sleep_s;
  Alcotest.(check (float 0.)) "backoff min" 1e-6 d.Policy.backoff_min_s;
  Alcotest.(check (float 0.)) "backoff max" 1e-3 d.Policy.backoff_max_s

(* The lazy registry entries: name/identifier split ("lazy" is a keyword),
   and the splitter actually set. *)
let test_policy_lazy_registry_entries () =
  let module Policy = Pool.Policy in
  Alcotest.(check string) "lazy_split is named lazy" "lazy"
    Policy.lazy_split.Policy.name;
  List.iter
    (fun (p : Policy.t) ->
      match p.Policy.splitter with
      | Policy.Lazy_binary { lazy_depth } ->
        Alcotest.(check bool)
          (p.Policy.name ^ ": sensible depth threshold")
          true (lazy_depth >= 0)
      | Policy.Eager_grain ->
        Alcotest.failf "%s should use Lazy_binary" p.Policy.name)
    [ Policy.lazy_split; Policy.lazy_sticky; Policy.lazy_steal_half;
      Policy.lazy_grain1 ];
  Alcotest.(check bool) "eager_grain1 forces grain 1" true
    (Policy.eager_grain1.Policy.fixed_grain = Some 1
    && Policy.eager_grain1.Policy.splitter = Policy.Eager_grain);
  Alcotest.(check bool) "lazy_grain1 forces grain 1" true
    (Policy.lazy_grain1.Policy.fixed_grain = Some 1)

(* An explicit call-site grain must beat [fixed_grain]: with n = finish and
   ~grain:n the loop may not split at all, which code can (and does) rely on
   for single-leaf regions. *)
let test_policy_fixed_grain_respects_explicit_grain () =
  match Pool.Policy.find "eager_grain1" with
  | None -> Alcotest.fail "eager_grain1 missing from the registry"
  | Some policy ->
    let pool = Pool.create ~policy ~num_workers:4 () in
    Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
    let before = Pool.Stats.tasks_executed (Pool.Stats.capture pool) in
    Pool.run pool (fun () ->
        Pool.parallel_for ~grain:4096 ~start:0 ~finish:4096
          ~body:(fun _ -> ())
          pool);
    let after = Pool.Stats.tasks_executed (Pool.Stats.capture pool) in
    Alcotest.(check int) "whole-range explicit grain spawns no task" 0
      (after - before)

(* [?minor_heap_kb]: the sizing must be visible inside [run] (the caller is
   worker 0), restored afterwards, validated, and must not change any
   result. *)
let test_minor_heap_sizing () =
  let outside = (Gc.get ()).Gc.minor_heap_size in
  let pool = Pool.create ~minor_heap_kb:8192 ~num_workers:2 () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
  let inside, sum =
    Pool.run pool (fun () ->
        ( (Gc.get ()).Gc.minor_heap_size,
          Pool.parallel_for_reduce ~start:0 ~finish:100_000 ~body:Fun.id
            ~combine:( + ) ~init:0 pool ))
  in
  (* 8192 KB = 2^20 words on 64-bit; the runtime may normalize upward but
     never below the request. *)
  Alcotest.(check bool) "resized inside run" true (inside >= 1 lsl 20);
  Alcotest.(check int) "restored after run" outside
    ((Gc.get ()).Gc.minor_heap_size);
  Alcotest.(check int) "result unchanged" (100_000 * 99_999 / 2) sum;
  Alcotest.check_raises "kb < 1 rejected"
    (Invalid_argument "Pool.create: minor_heap_kb must be >= 1") (fun () ->
      ignore (Pool.create ~minor_heap_kb:0 ~num_workers:1 ()))

(* Every named policy must compute identical results through the public API:
   a steal-heavy grain-1 reduce, join's (f result, g result) order — which is
   part of the API whatever order the branches actually run in — and deeply
   nested joins. *)
let test_policy_pools_agree () =
  List.iter
    (fun (p : Pool.Policy.t) ->
      let name = p.Pool.Policy.name in
      let pool = Pool.create ~policy:p ~num_workers:4 () in
      Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
      Alcotest.(check string) (name ^ ": pool reports its policy") name
        (Pool.policy_name pool);
      Alcotest.(check string) (name ^ ": stats carry the policy") name
        (Pool.Stats.capture pool).Pool.Stats.policy;
      let sum =
        Pool.run pool (fun () ->
            Pool.parallel_for_reduce ~grain:1 ~start:0 ~finish:20_000
              ~body:Fun.id ~combine:( + ) ~init:0 pool)
      in
      Alcotest.(check int) (name ^ ": steal-heavy reduce") 199_990_000 sum;
      let a, b =
        Pool.run pool (fun () -> Pool.join pool (fun () -> "f") (fun () -> "g"))
      in
      Alcotest.(check (pair string string)) (name ^ ": join result order")
        ("f", "g") (a, b);
      let rec fib k =
        if k < 2 then k
        else
          let x, y =
            Pool.join pool (fun () -> fib (k - 1)) (fun () -> fib (k - 2))
          in
          x + y
      in
      Alcotest.(check int) (name ^ ": nested joins") 610
        (Pool.run pool (fun () -> fib 15)))
    Pool.Policy.all

let prop_parallel_reduce_matches_sequential =
  QCheck.Test.make ~name:"parallel_for_reduce = sequential fold" ~count:20
    QCheck.(list small_int)
    (fun xs ->
      let a = Array.of_list xs in
      with_pool 3 (fun pool ->
          let expected = Array.fold_left ( + ) 0 a in
          let got =
            Pool.run pool (fun () ->
                Pool.parallel_for_reduce ~grain:2 ~start:0
                  ~finish:(Array.length a)
                  ~body:(fun i -> a.(i))
                  ~combine:( + ) ~init:0 pool)
          in
          expected = got))

let () =
  Alcotest.run "rpb_pool"
    [
      ( "ws_deque",
        [
          Alcotest.test_case "owner LIFO" `Quick test_deque_lifo_owner;
          Alcotest.test_case "thief FIFO" `Quick test_deque_fifo_thief;
          Alcotest.test_case "growth" `Quick test_deque_growth;
          Alcotest.test_case "interleaved wraparound" `Quick test_deque_interleaved;
          Alcotest.test_case "concurrent exactly-once" `Quick
            test_deque_concurrent_no_dup_no_loss;
          Alcotest.test_case "steal_half empty" `Quick test_steal_half_empty;
          Alcotest.test_case "steal_half singleton" `Quick
            test_steal_half_singleton;
          Alcotest.test_case "steal_half ordering" `Quick
            test_steal_half_ordering;
          Alcotest.test_case "steal_half concurrent exactly-once" `Quick
            test_steal_half_concurrent_no_dup_no_loss;
        ] );
      ( "policies",
        [
          Alcotest.test_case "registry" `Quick test_policy_registry;
          Alcotest.test_case "default = pre-policy constants" `Quick
            test_policy_default_is_prepolicy_constants;
          Alcotest.test_case "lazy registry entries" `Quick
            test_policy_lazy_registry_entries;
          Alcotest.test_case "explicit grain beats fixed_grain" `Quick
            test_policy_fixed_grain_respects_explicit_grain;
          Alcotest.test_case "minor heap sizing" `Quick
            test_minor_heap_sizing;
          Alcotest.test_case "all policies compute the same" `Quick
            test_policy_pools_agree;
        ] );
      ( "pool",
        [
          Alcotest.test_case "run returns" `Quick test_pool_run_returns;
          Alcotest.test_case "async/await" `Quick test_pool_async_await;
          Alcotest.test_case "join" `Quick test_pool_join;
          Alcotest.test_case "exception propagates" `Quick
            test_pool_exception_propagates;
          Alcotest.test_case "parallel_for coverage" `Quick
            test_pool_parallel_for_covers_range;
          Alcotest.test_case "parallel_for empty" `Quick
            test_pool_parallel_for_empty_range;
          Alcotest.test_case "reduce sum" `Quick test_pool_parallel_for_reduce_sum;
          Alcotest.test_case "reduce grain 1" `Quick
            test_pool_parallel_for_reduce_grain1;
          Alcotest.test_case "chunks partition" `Quick
            test_pool_parallel_chunks_partition;
          Alcotest.test_case "nested parallel_for" `Quick
            test_pool_nested_parallel_for;
          Alcotest.test_case "recursive fib join" `Quick test_pool_recursive_fib;
          Alcotest.test_case "single worker" `Quick
            test_pool_single_worker_sequential;
          Alcotest.test_case "outside run" `Quick test_pool_outside_run_sequential;
          Alcotest.test_case "current_worker" `Quick test_pool_current_worker;
          Alcotest.test_case "reuse across runs" `Quick test_pool_reuse_after_run;
          Alcotest.test_case "shutdown" `Quick test_pool_shutdown_rejects;
          Alcotest.test_case "many small tasks" `Quick test_pool_many_small_tasks;
          QCheck_alcotest.to_alcotest prop_parallel_reduce_matches_sequential;
        ] );
      ( "failures",
        [
          Alcotest.test_case "join branch raises" `Quick test_fail_join_branch;
          Alcotest.test_case "parallel_for leaf raises" `Quick
            test_fail_parallel_for_leaf;
          Alcotest.test_case "reduce combine raises" `Quick
            test_fail_reduce_combine;
          Alcotest.test_case "all leaves raise, one surfaces" `Quick
            test_fail_many_leaves_surfaces_one;
          Alcotest.test_case "async awaited off-pool" `Quick
            test_fail_async_awaited_off_pool;
          Alcotest.test_case "caught in run body" `Quick
            test_fail_caught_in_run_body_continues;
          Alcotest.test_case "shutdown fails pending" `Quick
            test_shutdown_fails_pending_promises;
          Alcotest.test_case "deadline stalls" `Quick test_run_deadline_stalls;
          Alcotest.test_case "deadline completes" `Quick
            test_run_deadline_completes;
        ] );
      ( "timer",
        [
          Alcotest.test_case "deadline runs share one domain" `Quick
            test_deadline_runs_share_timer_domain;
          Alcotest.test_case "schedule fires" `Quick test_timer_schedule_fires;
          Alcotest.test_case "cancel prevents fire" `Quick
            test_timer_cancel_prevents_fire;
          Alcotest.test_case "fires in deadline order" `Quick
            test_timer_ordering;
          Alcotest.test_case "cancel_run from another thread" `Quick
            test_cancel_run_from_other_thread;
        ] );
      ( "faults",
        [
          Alcotest.test_case "off by default" `Quick test_fault_off_by_default;
          Alcotest.test_case "task exceptions" `Quick test_fault_task_exn_injected;
          Alcotest.test_case "delays keep results" `Quick
            test_fault_delays_keep_results;
          Alcotest.test_case "spawn failures degrade" `Quick
            test_fault_spawn_degrades;
        ] );
      ( "telemetry",
        [
          Alcotest.test_case "per-worker sums" `Quick test_stats_per_worker_sums;
          Alcotest.test_case "single worker: zero steals" `Quick
            test_stats_single_worker_no_steals;
          Alcotest.test_case "diff and reset" `Quick test_stats_diff_and_reset;
          Alcotest.test_case "depth high-water semantics" `Quick
            test_stats_depth_high_water_semantics;
          Alcotest.test_case "deprecated stats string" `Quick
            test_stats_compat_string;
          Alcotest.test_case "trace span" `Quick test_trace_span_records_events;
        ] );
    ]
