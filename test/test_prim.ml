(* Unit and property tests for the rpb_prim substrate. *)

open Rpb_prim

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Rng.next a) (Rng.next b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.next a = Rng.next b then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 4)

let test_rng_int_range () =
  let r = Rng.create 7 in
  for _ = 1 to 1000 do
    let x = Rng.int r 17 in
    Alcotest.(check bool) "in range" true (x >= 0 && x < 17)
  done

let test_rng_float_range () =
  let r = Rng.create 9 in
  for _ = 1 to 1000 do
    let x = Rng.float r 3.5 in
    Alcotest.(check bool) "in range" true (x >= 0.0 && x < 3.5)
  done

let test_rng_split_independent () =
  let a = Rng.create 5 in
  let b = Rng.split a in
  let clash = ref 0 in
  for _ = 1 to 64 do
    if Rng.next a = Rng.next b then incr clash
  done;
  Alcotest.(check bool) "split streams differ" true (!clash < 4)

let test_hash64_nonnegative_and_spread () =
  let seen = Hashtbl.create 1024 in
  for i = 0 to 9999 do
    let h = Rng.hash64 i in
    Alcotest.(check bool) "non-negative" true (h >= 0);
    Hashtbl.replace seen h ()
  done;
  (* 10k inputs should produce essentially 10k distinct hashes. *)
  Alcotest.(check bool) "few collisions" true (Hashtbl.length seen > 9990)

let test_hash64_stateless () =
  Alcotest.(check int) "pure" (Rng.hash64 123456) (Rng.hash64 123456)

let test_exponential_mean () =
  let r = Rng.create 11 in
  let n = 20000 in
  let total = ref 0 in
  for _ = 1 to n do
    total := !total + Rng.exponential_int r ~mean:100
  done;
  let mean = float_of_int !total /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "mean ~100 (got %.1f)" mean)
    true
    (mean > 80.0 && mean < 120.0)

let test_permutation () =
  let r = Rng.create 3 in
  let p = Rng.permutation r 100 in
  let seen = Array.make 100 false in
  Array.iter
    (fun x ->
      Alcotest.(check bool) "in range" true (x >= 0 && x < 100);
      Alcotest.(check bool) "no dup" false seen.(x);
      seen.(x) <- true)
    p

let test_atomic_array_basic () =
  let a = Atomic_array.make 10 5 in
  Alcotest.(check int) "len" 10 (Atomic_array.length a);
  Alcotest.(check int) "init" 5 (Atomic_array.get a 3);
  Atomic_array.set a 3 9;
  Alcotest.(check int) "set" 9 (Atomic_array.get a 3);
  Alcotest.(check bool) "cas ok" true (Atomic_array.compare_and_set a 3 9 11);
  Alcotest.(check bool) "cas stale" false (Atomic_array.compare_and_set a 3 9 13);
  Alcotest.(check int) "after cas" 11 (Atomic_array.get a 3)

let test_atomic_array_fetch_ops () =
  let a = Atomic_array.init 4 (fun i -> i * 10) in
  Alcotest.(check int) "faa returns old" 20 (Atomic_array.fetch_and_add a 2 5);
  Alcotest.(check int) "faa applied" 25 (Atomic_array.get a 2);
  Alcotest.(check int) "fetch_min old" 25 (Atomic_array.fetch_min a 2 7);
  Alcotest.(check int) "fetch_min applied" 7 (Atomic_array.get a 2);
  Alcotest.(check int) "fetch_min noop" 7 (Atomic_array.fetch_min a 2 100);
  Alcotest.(check int) "unchanged" 7 (Atomic_array.get a 2);
  Alcotest.(check int) "fetch_max old" 7 (Atomic_array.fetch_max a 2 50);
  Alcotest.(check int) "fetch_max applied" 50 (Atomic_array.get a 2)

let test_atomic_array_parallel_counter () =
  (* Concurrent fetch_and_add from 4 domains must not lose increments. *)
  let a = Atomic_array.make 1 0 in
  let per_domain = 10_000 in
  let spawn () =
    Domain.spawn (fun () ->
        for _ = 1 to per_domain do
          ignore (Atomic_array.fetch_and_add a 0 1)
        done)
  in
  let ds = List.init 4 (fun _ -> spawn ()) in
  List.iter Domain.join ds;
  Alcotest.(check int) "no lost updates" (4 * per_domain) (Atomic_array.get a 0)

let test_atomic_array_parallel_fetch_min () =
  let a = Atomic_array.make 1 max_int in
  let ds =
    List.init 4 (fun d ->
        Domain.spawn (fun () ->
            let r = Rng.create (100 + d) in
            for _ = 1 to 5_000 do
              ignore (Atomic_array.fetch_min a 0 (Rng.int r 1_000_000))
            done))
  in
  List.iter Domain.join ds;
  (* The final value must be achievable: recompute the true min. *)
  let expected = ref max_int in
  List.iteri
    (fun d () ->
      let r = Rng.create (100 + d) in
      for _ = 1 to 5_000 do
        expected := min !expected (Rng.int r 1_000_000)
      done)
    [ (); (); (); () ];
  Alcotest.(check int) "true minimum" !expected (Atomic_array.get a 0)

let test_util_ceil_div () =
  Alcotest.(check int) "7/2" 4 (Util.ceil_div 7 2);
  Alcotest.(check int) "8/2" 4 (Util.ceil_div 8 2);
  Alcotest.(check int) "0/5" 0 (Util.ceil_div 0 5);
  Alcotest.(check int) "1/5" 1 (Util.ceil_div 1 5)

let test_util_pow2 () =
  Alcotest.(check int) "1" 1 (Util.ceil_pow2 1);
  Alcotest.(check int) "2" 2 (Util.ceil_pow2 2);
  Alcotest.(check int) "3" 4 (Util.ceil_pow2 3);
  Alcotest.(check int) "1000" 1024 (Util.ceil_pow2 1000);
  Alcotest.(check int) "log2 1" 0 (Util.ilog2 1);
  Alcotest.(check int) "log2 1024" 10 (Util.ilog2 1024);
  Alcotest.(check int) "log2 1023" 9 (Util.ilog2 1023)

let test_util_sorted () =
  Alcotest.(check bool) "sorted" true (Util.is_sorted [| 1; 2; 2; 3 |]);
  Alcotest.(check bool) "unsorted" false (Util.is_sorted [| 1; 3; 2 |]);
  Alcotest.(check bool) "empty" true (Util.is_sorted ([||] : int array));
  Alcotest.(check bool) "strict" true (Util.is_strictly_increasing [| 1; 2; 3 |]);
  Alcotest.(check bool) "not strict" false (Util.is_strictly_increasing [| 1; 2; 2 |])

let test_timing () =
  let x, dt = Timing.time (fun () -> 42) in
  Alcotest.(check int) "result" 42 x;
  Alcotest.(check bool) "non-negative" true (dt >= 0.0);
  let x, dt = Timing.best_of ~repeats:3 (fun () -> 7) in
  Alcotest.(check int) "best_of result" 7 x;
  Alcotest.(check bool) "best_of time" true (dt >= 0.0);
  let x, dt = Timing.mean_of ~repeats:3 (fun () -> 9) in
  Alcotest.(check int) "mean_of result" 9 x;
  Alcotest.(check bool) "mean_of time" true (dt >= 0.0)

(* Property tests. *)

let prop_permutation_is_bijection =
  QCheck.Test.make ~name:"permutation is a bijection" ~count:50
    QCheck.(pair small_nat small_nat)
    (fun (seed, n) ->
      let n = n + 1 in
      let p = Rng.permutation (Rng.create seed) n in
      let seen = Array.make n false in
      Array.iter (fun x -> seen.(x) <- true) p;
      Array.for_all (fun b -> b) seen)

let prop_ceil_div =
  QCheck.Test.make ~name:"ceil_div a b = ceil(a/b)" ~count:200
    QCheck.(pair small_nat small_nat)
    (fun (a, b) ->
      let b = b + 1 in
      let q = Util.ceil_div a b in
      (q * b >= a) && ((q - 1) * b < a || a = 0))

let prop_ceil_pow2 =
  QCheck.Test.make ~name:"ceil_pow2 bounds" ~count:200 QCheck.small_nat
    (fun n ->
      let n = n + 1 in
      let p = Util.ceil_pow2 n in
      p >= n && p land (p - 1) = 0 && (p = 1 || p / 2 < n))

let () =
  Alcotest.run "rpb_prim"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "int range" `Quick test_rng_int_range;
          Alcotest.test_case "float range" `Quick test_rng_float_range;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent;
          Alcotest.test_case "hash64 spread" `Quick test_hash64_nonnegative_and_spread;
          Alcotest.test_case "hash64 stateless" `Quick test_hash64_stateless;
          Alcotest.test_case "exponential mean" `Quick test_exponential_mean;
          Alcotest.test_case "permutation" `Quick test_permutation;
          QCheck_alcotest.to_alcotest prop_permutation_is_bijection;
        ] );
      ( "atomic_array",
        [
          Alcotest.test_case "basic ops" `Quick test_atomic_array_basic;
          Alcotest.test_case "fetch ops" `Quick test_atomic_array_fetch_ops;
          Alcotest.test_case "parallel counter" `Quick test_atomic_array_parallel_counter;
          Alcotest.test_case "parallel fetch_min" `Quick test_atomic_array_parallel_fetch_min;
        ] );
      ( "util",
        [
          Alcotest.test_case "ceil_div" `Quick test_util_ceil_div;
          Alcotest.test_case "pow2/ilog2" `Quick test_util_pow2;
          Alcotest.test_case "sortedness" `Quick test_util_sorted;
          QCheck_alcotest.to_alcotest prop_ceil_div;
          QCheck_alcotest.to_alcotest prop_ceil_pow2;
        ] );
      ("timing", [ Alcotest.test_case "timers" `Quick test_timing ]);
    ]
