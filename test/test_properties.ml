(* Cross-cutting properties and edge cases not covered by the per-library
   suites: ordering-sensitivity, degenerate inputs, and API contracts. *)

open Rpb_pool

let with_pool n f =
  let pool = Pool.create ~num_workers:n () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () -> f pool)

let in_pool f = with_pool 3 (fun pool -> Pool.run pool (fun () -> f pool))

(* ---------- Order-sensitivity of the parallel primitives ---------- *)

let test_scan_non_commutative_monoid () =
  (* String concatenation is associative but NOT commutative: a block scan
     that reorders operands would corrupt the result. *)
  in_pool (fun pool ->
      let words = Array.init 500 (fun i -> Printf.sprintf "%d," i) in
      let got = Rpb_parseq.Scan.inclusive pool ( ^ ) "" words in
      let expected = Array.copy words in
      let acc = ref "" in
      Array.iteri
        (fun i w ->
          acc := !acc ^ w;
          expected.(i) <- !acc)
        words;
      Alcotest.(check bool) "concat scan exact" true (got = expected))

let test_reduce_non_commutative () =
  in_pool (fun pool ->
      let words = Array.init 300 (fun i -> string_of_int (i mod 10)) in
      let got = Rpb_core.Par_array.reduce pool ( ^ ) "" words in
      let expected = Array.fold_left ( ^ ) "" words in
      Alcotest.(check string) "concat reduce exact" expected got)

let test_merge_custom_comparator () =
  in_pool (fun pool ->
      let desc a b = compare b a in
      let a = [| 9; 7; 5 |] and b = [| 8; 6; 1 |] in
      Alcotest.(check bool) "descending merge" true
        (Rpb_parseq.Merge.merge pool ~cmp:desc a b = [| 9; 8; 7; 6; 5; 1 |]))

let test_sort_all_equal_keys () =
  in_pool (fun pool ->
      let a = Array.make 10_000 42 in
      Alcotest.(check bool) "sample sort constant input" true
        (Rpb_parseq.Sort.sample_sort pool ~cmp:compare a = a);
      Alcotest.(check bool) "merge sort constant input" true
        (Rpb_parseq.Sort.merge_sort pool ~cmp:compare a = a))

(* ---------- Pool contract edges ---------- *)

let test_parallel_for_grain_exceeds_range () =
  in_pool (fun pool ->
      let hits = ref 0 in
      Pool.parallel_for ~grain:1_000_000 ~start:0 ~finish:10
        ~body:(fun _ -> incr hits)
        pool;
      Alcotest.(check int) "all visited" 10 !hits)

let test_parallel_for_negative_range () =
  in_pool (fun pool ->
      let hits = Rpb_prim.Atomic_array.make 20 0 in
      Pool.parallel_for ~start:(-5) ~finish:5
        ~body:(fun i -> ignore (Rpb_prim.Atomic_array.fetch_and_add hits (i + 10) 1))
        pool;
      let count = ref 0 in
      for i = 0 to 19 do
        count := !count + Rpb_prim.Atomic_array.get hits i
      done;
      Alcotest.(check int) "negative start covered" 10 !count)

let test_pool_create_rejects_zero () =
  match Pool.create ~num_workers:0 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero workers accepted"

let test_nested_run_rejected () =
  with_pool 2 (fun pool ->
      Pool.run pool (fun () ->
          match Pool.run pool (fun () -> 0) with
          | exception Invalid_argument _ -> ()
          | _ -> Alcotest.fail "nested run accepted"))

(* ---------- Pattern taxonomy consistency ---------- *)

let test_classification_consistent_with_safety () =
  (* Any pattern classified for a REGULAR shape must be fearless. *)
  let shapes =
    Rpb_core.Pattern.
      [
        { data = Structured; op = Read_only; dispatch = Static; ordering = Unordered };
        { data = Unstructured; op = Read_only; dispatch = Static; ordering = Unordered };
        { data = Structured; op = Local_read_write; dispatch = Static; ordering = Unordered };
      ]
  in
  List.iter
    (fun shape ->
      Alcotest.(check bool) "shape is regular" true (Rpb_core.Pattern.is_regular shape);
      List.iter
        (fun access ->
          Alcotest.(check string) "regular => fearless" "F"
            (Rpb_core.Pattern.fear_name (Rpb_core.Pattern.safety access)))
        (Rpb_core.Pattern.classify_access shape))
    shapes

let test_irregularity_monotone () =
  (* Making any dimension irregular never lowers the index. *)
  let base =
    Rpb_core.Pattern.
      { data = Structured; op = Read_only; dispatch = Static; ordering = Unordered }
  in
  let variants =
    Rpb_core.Pattern.
      [
        { base with data = Unstructured };
        { base with op = Local_read_write };
        { base with op = Arbitrary_read_write };
        { base with dispatch = Dynamic };
        { base with ordering = Ordered };
      ]
  in
  let b = Rpb_core.Pattern.irregularity_index base in
  List.iter
    (fun v ->
      Alcotest.(check bool) "index grows" true
        (Rpb_core.Pattern.irregularity_index v > b))
    variants

(* ---------- Graph construction property ---------- *)

let naive_csr n edges =
  let buckets = Array.make n [] in
  Array.iter (fun (u, v) -> buckets.(u) <- v :: buckets.(u)) edges;
  Array.map (fun l -> List.rev l) buckets

let prop_csr_matches_naive =
  QCheck.Test.make ~name:"Csr.of_edges = naive adjacency" ~count:30
    QCheck.(pair small_nat (list (pair (int_bound 19) (int_bound 19))))
    (fun (_, edge_list) ->
      let edges = Array.of_list edge_list in
      with_pool 2 (fun pool ->
          Pool.run pool (fun () ->
              let g = Rpb_graph.Csr.of_edges pool ~n:20 edges in
              let expected = naive_csr 20 edges in
              let ok = ref true in
              for u = 0 to 19 do
                let got =
                  List.rev (Rpb_graph.Csr.fold_neighbors g u ~init:[] ~f:(fun acc v -> v :: acc))
                in
                if got <> expected.(u) then ok := false
              done;
              !ok)))

let test_csr_weight_range () =
  in_pool (fun pool ->
      let g = Rpb_graph.Generate.rmat pool ~scale:8 ~edge_factor:4 ~weighted:true () in
      for e = 0 to Rpb_graph.Csr.m g - 1 do
        let w = Rpb_graph.Csr.edge_weight g e in
        if w < 1 || w > 100 then Alcotest.failf "weight %d out of range" w
      done)

(* ---------- Text edges ---------- *)

let test_sa_distinct_chars () =
  in_pool (fun pool ->
      (* All-distinct characters: one doubling round should settle it. *)
      let s = "zyxwvutsrq" in
      let sa = Rpb_text.Suffix_array.build pool s in
      Alcotest.(check bool) "valid" true (Rpb_text.Suffix_array.is_suffix_array s sa);
      (* Reverse-sorted input: suffix j is smaller than suffix i for j > i. *)
      Alcotest.(check bool) "reversed" true
        (Rpb_prim.Util.array_for_all_i (fun j p -> p = 9 - j) sa))

let test_bwt_degenerate () =
  in_pool (fun pool ->
      Alcotest.(check string) "empty roundtrip" ""
        (Rpb_text.Bwt.decode pool (Rpb_text.Bwt.encode pool ""));
      Alcotest.(check string) "single char" "q"
        (Rpb_text.Bwt.decode pool (Rpb_text.Bwt.encode pool "q"));
      Alcotest.(check string) "parallel single" "q"
        (Rpb_text.Bwt.decode_parallel pool (Rpb_text.Bwt.encode pool "q")))

let test_lcp_all_same () =
  in_pool (fun pool ->
      let s = String.make 64 'a' in
      let sa = Rpb_text.Suffix_array.build pool s in
      let lcp = Rpb_text.Lcp.kasai pool s ~sa in
      (* sa = [63..0]; lcp.(j) = j - 1 ... actually lcp of consecutive
         all-'a' suffixes of lengths j and j+1 is j. *)
      let ok = ref true in
      for j = 1 to 63 do
        if lcp.(j) <> j then ok := false
      done;
      Alcotest.(check bool) "lcp ladder" true !ok)

(* ---------- Refinement contract ---------- *)

let test_refine_respects_max_rounds () =
  in_pool (fun pool ->
      let points = Rpb_geom.Pointgen.kuzmin ~n:200 ~seed:91 in
      let mesh = Rpb_geom.Delaunay.triangulate points in
      let stats = Rpb_geom.Refine.refine ~min_angle:30.0 ~max_rounds:2 pool mesh in
      Alcotest.(check bool) "round cap" true (stats.Rpb_geom.Refine.rounds <= 2);
      Alcotest.(check bool) "mesh still valid" true
        (Rpb_geom.Mesh.validate mesh = Ok ()))

(* ---------- Multiqueue edges ---------- *)

let test_mq_empty_pop_and_reuse () =
  let q = Rpb_mq.Multiqueue.create ~queues:4 () in
  Alcotest.(check (option (pair int int))) "empty pop" None (Rpb_mq.Multiqueue.pop q);
  Rpb_mq.Multiqueue.push q ~pri:1 10;
  Alcotest.(check bool) "non-empty" false (Rpb_mq.Multiqueue.is_empty q);
  ignore (Rpb_mq.Multiqueue.pop q);
  Alcotest.(check (option (pair int int))) "empty again" None (Rpb_mq.Multiqueue.pop q);
  (* Reuse after drain. *)
  Rpb_mq.Multiqueue.push q ~pri:2 20;
  Alcotest.(check (option (pair int int))) "reused" (Some (2, 20))
    (Rpb_mq.Multiqueue.pop q)

let test_mq_negative_priorities () =
  let q = Rpb_mq.Multiqueue.create ~queues:1 () in
  Rpb_mq.Multiqueue.push q ~pri:5 1;
  Rpb_mq.Multiqueue.push q ~pri:(-3) 2;
  Rpb_mq.Multiqueue.push q ~pri:0 3;
  Alcotest.(check (option (pair int int))) "negative first" (Some (-3, 2))
    (Rpb_mq.Multiqueue.pop q)

(* ---------- Chash edges ---------- *)

let test_chash_zero_and_max_keys () =
  let t = Rpb_chash.Chash.create ~capacity:8 in
  Alcotest.(check bool) "key 0" true (Rpb_chash.Chash.insert t 0);
  Alcotest.(check bool) "key 0 member" true (Rpb_chash.Chash.mem t 0);
  let big = max_int - 1 in
  Alcotest.(check bool) "huge key" true (Rpb_chash.Chash.insert t big);
  Alcotest.(check bool) "huge member" true (Rpb_chash.Chash.mem t big)

(* ---------- Fear-spectrum properties (seeded in-test generators) ---------- *)

(* Random permutations: every scatter mode must agree element-wise with the
   sequential oracle [out.(offsets.(i)) <- src.(i)] — the paper's claim that
   all fear-spectrum variants compute the same result on valid inputs. *)
let test_scatter_modes_agree_with_oracle () =
  in_pool (fun pool ->
      let rng = Rpb_prim.Rng.create 67 in
      for _trial = 1 to 25 do
        let n = 1 + Rpb_prim.Rng.int rng 5000 in
        let offsets = Rpb_prim.Rng.permutation rng n in
        let src = Array.init n (fun i -> (i * 31) land 1023) in
        let oracle = Array.make n (-1) in
        for i = 0 to n - 1 do
          oracle.(offsets.(i)) <- src.(i)
        done;
        List.iter
          (fun mode ->
            match mode with
            | Rpb_core.Scatter.Atomic ->
              let out = Rpb_prim.Atomic_array.make n (-1) in
              Rpb_core.Scatter.atomic pool ~out ~offsets ~src;
              for j = 0 to n - 1 do
                if Rpb_prim.Atomic_array.get out j <> oracle.(j) then
                  Alcotest.failf "atomic disagrees at %d (n=%d)" j n
              done
            | _ ->
              let out = Array.make n (-1) in
              Rpb_core.Scatter.scatter mode pool ~out ~offsets ~src;
              if out <> oracle then
                Alcotest.failf "%s disagrees with oracle (n=%d)"
                  (Rpb_core.Scatter.mode_name mode) n)
          Rpb_core.Scatter.all_modes
      done)

(* Random monotone splits: the parallel ranged-indirect fill must equal
   sequential chunking, including empty chunks and slots no chunk covers. *)
let test_chunks_ind_matches_sequential_chunking () =
  in_pool (fun pool ->
      let rng = Rpb_prim.Rng.create 71 in
      for _trial = 1 to 25 do
        let n = 1 + Rpb_prim.Rng.int rng 4000 in
        let pieces = 1 + Rpb_prim.Rng.int rng 32 in
        let splits =
          Array.init (pieces + 1) (fun _ -> Rpb_prim.Rng.int rng (n + 1))
        in
        Array.sort compare splits;
        let f i j = (i * 1_000_003) + j in
        let got = Array.make n (-1) in
        Rpb_core.Chunks_ind.fill_chunks_ind pool ~out:got ~offsets:splits ~f;
        let expected = Array.make n (-1) in
        for i = 0 to pieces - 1 do
          for j = splits.(i) to splits.(i + 1) - 1 do
            expected.(j) <- f i j
          done
        done;
        if got <> expected then
          Alcotest.failf "chunks disagree (n=%d pieces=%d)" n pieces
      done)

(* The instrumented (shadow-store) path must be observationally identical to
   the zero-cost plain-array path on valid inputs — same payload, no races. *)
let test_shadow_store_write_through_agrees () =
  in_pool (fun pool ->
      Rpb_check.Shadow.with_instrumentation true @@ fun () ->
      let rng = Rpb_prim.Rng.create 73 in
      for _trial = 1 to 10 do
        let n = 1 + Rpb_prim.Rng.int rng 3000 in
        let offsets = Rpb_prim.Rng.permutation rng n in
        let src = Array.init n Fun.id in
        let plain = Array.make n (-1) in
        Rpb_core.Scatter.unchecked pool ~out:plain ~offsets ~src;
        let shadow = Rpb_check.Shadow.create ~pool (Array.make n (-1)) in
        Rpb_check.Instrument.unchecked pool ~out:shadow ~offsets ~src;
        Alcotest.(check bool) "write-through agrees" true
          (Rpb_check.Shadow.payload shadow = plain);
        Alcotest.(check int) "no false positives" 0
          (Rpb_check.Shadow.race_count shadow)
      done)

(* ---------- Stm isolation ---------- *)

let test_stm_snapshot_isolation () =
  (* A transaction reading two variables may never observe a torn update
     written by another transaction that keeps their sum invariant. *)
  let a = Rpb_extra.Stm.tvar 100 and b = Rpb_extra.Stm.tvar 100 in
  let stop = Atomic.make false in
  let violations = Atomic.make 0 in
  let writer =
    Domain.spawn (fun () ->
        let rng = Rpb_prim.Rng.create 31 in
        for _ = 1 to 20_000 do
          let d = Rpb_prim.Rng.int rng 10 in
          Rpb_extra.Stm.atomically (fun tx ->
              Rpb_extra.Stm.write tx a (Rpb_extra.Stm.read tx a - d);
              Rpb_extra.Stm.write tx b (Rpb_extra.Stm.read tx b + d))
        done;
        Atomic.set stop true)
  in
  let reader =
    Domain.spawn (fun () ->
        while not (Atomic.get stop) do
          let sum =
            Rpb_extra.Stm.atomically (fun tx ->
                Rpb_extra.Stm.read tx a + Rpb_extra.Stm.read tx b)
          in
          if sum <> 200 then Atomic.incr violations
        done)
  in
  Domain.join writer;
  Domain.join reader;
  Alcotest.(check int) "no torn snapshots" 0 (Atomic.get violations)

(* ---------- Splitter granularity harness (eager vs lazy) ---------- *)

(* Every registry benchmark x {eager, lazy} splitter x {1, 2, 4} workers
   must reproduce the digest of its own sequential run — the same
   within-instance comparison the differential oracle makes.  A splitting
   scheme that drops, duplicates, or reorders a leaf observably cannot
   pass; 1 worker additionally pins the sequential-degradation path. *)
let splitter_policies = [ Pool.Policy.default; Pool.Policy.lazy_split ]

let test_registry_digests_under_splitters () =
  let module Common = Rpb_benchmarks.Common in
  List.iter
    (fun (entry : Common.entry) ->
      List.iter
        (fun (policy : Pool.Policy.t) ->
          List.iter
            (fun workers ->
              let pool = Pool.create ~policy ~num_workers:workers () in
              Fun.protect ~finally:(fun () -> Pool.shutdown pool)
              @@ fun () ->
              Pool.run pool (fun () ->
                  let input = List.hd entry.Common.inputs in
                  let prepared = entry.Common.prepare pool ~input ~scale:0 in
                  prepared.Common.run_seq ();
                  let reference = prepared.Common.snapshot () in
                  prepared.Common.run_par Rpb_benchmarks.Mode.Unsafe;
                  let got = prepared.Common.snapshot () in
                  if not (prepared.Common.verify ()) then
                    Alcotest.failf "%s under %s with %d workers fails verify"
                      entry.Common.name policy.Pool.Policy.name workers;
                  if reference <> got then
                    Alcotest.failf
                      "%s under %s with %d workers diverges from its \
                       sequential digest"
                      entry.Common.name policy.Pool.Policy.name workers))
            [ 1; 2; 4 ])
        splitter_policies)
    Rpb_benchmarks.Registry.all

(* Seeded model of the [Lazy_binary] splitter.  A bag of ranges models the
   published tasks, a seeded coin models the deque-depth test, and random
   bag order models arbitrary thief interleavings.  The range arithmetic
   mirrors the implementation exactly: sub-grain ranges run as leaves, a
   "deep" verdict consumes one grain chunk inline and re-decides on the
   remainder, a "drained" verdict publishes the top half and continues on
   the bottom half.  Every index must be covered exactly once — no loss, no
   duplication — under every interleaving. *)
let lazy_model_exact_cover ~seed ~n ~grain =
  let rng = Rpb_prim.Rng.create seed in
  let hits = Array.make (max n 1) 0 in
  let mark lo hi =
    for i = lo to hi - 1 do
      hits.(i) <- hits.(i) + 1
    done
  in
  let bag = ref [] in
  let take_random () =
    match !bag with
    | [] -> None
    | l ->
      let k = Rpb_prim.Rng.int rng (List.length l) in
      let rec split i acc = function
        | [] -> assert false
        | x :: rest ->
          if i = k then (x, List.rev_append acc rest)
          else split (i + 1) (x :: acc) rest
      in
      let x, rest = split 0 [] l in
      bag := rest;
      Some x
  in
  let rec exec (lo, hi) =
    if hi - lo <= grain then mark lo hi
    else if Rpb_prim.Rng.bool rng then begin
      (* deep: the may-inline fast path consumes one chunk, zero traffic *)
      mark lo (lo + grain);
      exec (lo + grain, hi)
    end
    else begin
      (* drained: split off the top half for a thief *)
      let mid = lo + ((hi - lo) / 2) in
      bag := (mid, hi) :: !bag;
      exec (lo, mid)
    end
  in
  if n > 0 then begin
    bag := [ (0, n) ];
    let rec drain () =
      match take_random () with
      | None -> ()
      | Some r ->
        exec r;
        drain ()
    in
    drain ()
  end;
  n = 0 || Array.for_all (fun c -> c = 1) hits

let test_lazy_split_model_exact_cover () =
  List.iter
    (fun seed ->
      List.iter
        (fun n ->
          List.iter
            (fun grain ->
              if not (lazy_model_exact_cover ~seed ~n ~grain) then
                Alcotest.failf
                  "lazy-splitting model lost or duplicated an index: seed=%d \
                   n=%d grain=%d"
                  seed n grain)
            [ 1; 2; 3; 7 ])
        [ 0; 1; 2; 3; 17; 100; 1024; 4097 ])
    (List.init 25 Fun.id)

let () =
  Alcotest.run "rpb_properties"
    [
      ( "ordering",
        [
          Alcotest.test_case "non-commutative scan" `Quick
            test_scan_non_commutative_monoid;
          Alcotest.test_case "non-commutative reduce" `Quick
            test_reduce_non_commutative;
          Alcotest.test_case "custom comparator merge" `Quick
            test_merge_custom_comparator;
          Alcotest.test_case "constant-key sorts" `Quick test_sort_all_equal_keys;
        ] );
      ( "pool_edges",
        [
          Alcotest.test_case "grain > range" `Quick
            test_parallel_for_grain_exceeds_range;
          Alcotest.test_case "negative range" `Quick test_parallel_for_negative_range;
          Alcotest.test_case "zero workers rejected" `Quick
            test_pool_create_rejects_zero;
          Alcotest.test_case "nested run rejected" `Quick test_nested_run_rejected;
        ] );
      ( "pattern_consistency",
        [
          Alcotest.test_case "regular => fearless" `Quick
            test_classification_consistent_with_safety;
          Alcotest.test_case "irregularity monotone" `Quick test_irregularity_monotone;
        ] );
      ( "graph_properties",
        [
          QCheck_alcotest.to_alcotest prop_csr_matches_naive;
          Alcotest.test_case "weight range" `Quick test_csr_weight_range;
        ] );
      ( "text_edges",
        [
          Alcotest.test_case "distinct chars" `Quick test_sa_distinct_chars;
          Alcotest.test_case "degenerate bwt" `Quick test_bwt_degenerate;
          Alcotest.test_case "all-equal lcp" `Quick test_lcp_all_same;
        ] );
      ( "geom_edges",
        [ Alcotest.test_case "max_rounds respected" `Quick test_refine_respects_max_rounds ] );
      ( "mq_edges",
        [
          Alcotest.test_case "empty/reuse" `Quick test_mq_empty_pop_and_reuse;
          Alcotest.test_case "negative priorities" `Quick test_mq_negative_priorities;
        ] );
      ( "chash_edges",
        [ Alcotest.test_case "extreme keys" `Quick test_chash_zero_and_max_keys ] );
      ( "fear_spectrum",
        [
          Alcotest.test_case "scatter modes = oracle" `Quick
            test_scatter_modes_agree_with_oracle;
          Alcotest.test_case "chunks = sequential chunking" `Quick
            test_chunks_ind_matches_sequential_chunking;
          Alcotest.test_case "shadow store write-through" `Quick
            test_shadow_store_write_through_agrees;
        ] );
      ( "stm_isolation",
        [ Alcotest.test_case "snapshot isolation" `Quick test_stm_snapshot_isolation ] );
      ( "splitters",
        [
          Alcotest.test_case "registry digests: eager/lazy x 1/2/4 workers"
            `Quick test_registry_digests_under_splitters;
          Alcotest.test_case "lazy model covers exactly once" `Quick
            test_lazy_split_model_exact_cover;
        ] );
    ]
