(* Tests for the rpb serve stack: wire protocol, the request server's error
   taxonomy and admission control, cancellation on disconnect, graceful
   drain, and the seeded fault-injection soak. *)

open Rpb_serve
module Pool = Rpb_pool.Pool
open Rpb_benchmarks
module J = Bench_json

(* ---------- helpers ---------- *)

let sock_counter = ref 0

let fresh_sock () =
  incr sock_counter;
  Printf.sprintf "%s/rpb-serve-%d-%d.sock"
    (Filename.get_temp_dir_name ())
    (Unix.getpid ()) !sock_counter

let with_server ?(threads = 2) ?(max_queue = 16) ?(policy = "default")
    ?(preload = []) ?json_path f =
  let cfg =
    {
      (Serve.default_config ~socket_path:(fresh_sock ())) with
      threads;
      max_queue;
      policy;
      preload;
      json_path;
      drain_grace_s = 5.0;
      quiet = true;
    }
  in
  match Serve.start cfg with
  | Error e -> Alcotest.fail ("server start: " ^ e)
  | Ok t -> Fun.protect ~finally:(fun () -> Serve.stop t) (fun () -> f t)

let connect t =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX (Serve.socket_path t));
  (fd, Protocol.reader fd)

let recv r =
  match Protocol.read_frame r with
  | None -> Alcotest.fail "unexpected EOF from server"
  | Some line -> (
    match Protocol.parse_reply line with
    | Ok reply -> reply
    | Error e -> Alcotest.fail ("bad reply: " ^ e))

let rpc (fd, r) req =
  Protocol.write_frame fd (Protocol.request_line req);
  recv r

let close_conn (fd, _) = try Unix.close fd with Unix.Unix_error _ -> ()

let err_kind = function
  | Protocol.Err_reply { kind; _ } -> Some kind
  | Protocol.Ok_reply _ -> None

(* Sequential-oracle digest for a benchmark's default input, computed on a
   private pool: what every ok reply for the same instance must hash to. *)
let oracle_digest bench scale =
  let entry = Option.get (Registry.find bench) in
  let input = List.hd entry.Common.inputs in
  let pool = Pool.create ~num_workers:2 () in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      Pool.run pool (fun () ->
          let p = entry.Common.prepare pool ~input ~scale in
          p.Common.run_seq ();
          Protocol.digest_hash (p.Common.snapshot ())))

(* ---------- protocol ---------- *)

let test_request_roundtrip () =
  let req =
    Protocol.request ~input:"random" ~mode:"checked" ~scale:2 ~policy:"lazy"
      ~deadline_s:0.25 ~spin_ms:7 ~id:42 ~bench:"hist" ()
  in
  match Protocol.parse_request (Protocol.request_line req) with
  | Error e -> Alcotest.fail e
  | Ok got ->
    Alcotest.(check int) "id" 42 got.Protocol.id;
    Alcotest.(check string) "bench" "hist" got.Protocol.bench;
    Alcotest.(check (option string)) "input" (Some "random") got.Protocol.input;
    Alcotest.(check string) "mode" "checked" got.Protocol.mode;
    Alcotest.(check int) "scale" 2 got.Protocol.scale;
    Alcotest.(check string) "policy" "lazy" got.Protocol.policy;
    Alcotest.(check bool) "deadline" true
      (match got.Protocol.deadline_s with
      | Some d -> Float.abs (d -. 0.25) < 1e-9
      | None -> false);
    Alcotest.(check int) "spin_ms" 7 got.Protocol.spin_ms

let test_request_defaults () =
  match Protocol.parse_request "id=3 bench=sort extra=ignored" with
  | Error e -> Alcotest.fail e
  | Ok got ->
    Alcotest.(check string) "mode default" "unsafe" got.Protocol.mode;
    Alcotest.(check string) "policy default" "default" got.Protocol.policy;
    Alcotest.(check int) "scale default" 0 got.Protocol.scale;
    Alcotest.(check (option string)) "no input" None got.Protocol.input

let test_request_rejects () =
  let bad l =
    match Protocol.parse_request l with Ok _ -> false | Error _ -> true
  in
  Alcotest.(check bool) "missing id" true (bad "bench=hist");
  Alcotest.(check bool) "missing bench" true (bad "id=1");
  Alcotest.(check bool) "bad int" true (bad "id=zz bench=hist");
  Alcotest.(check bool) "negative deadline" true
    (bad "id=1 bench=hist deadline_ms=-5")

let test_reply_roundtrip () =
  let ok =
    Protocol.Ok_reply { id = 9; digest = 123456789; queue_ms = 1.5; exec_ms = 2.25 }
  in
  (match Protocol.parse_reply (Protocol.reply_line ok) with
  | Ok (Protocol.Ok_reply got) ->
    Alcotest.(check int) "id" 9 got.id;
    Alcotest.(check int) "digest" 123456789 got.digest
  | _ -> Alcotest.fail "ok reply did not round-trip");
  let e =
    Protocol.Err_reply
      {
        id = 4;
        kind = Protocol.Overloaded;
        retry_after_ms = Some 30;
        msg = "queue full";
      }
  in
  match Protocol.parse_reply (Protocol.reply_line e) with
  | Ok (Protocol.Err_reply got) ->
    Alcotest.(check bool) "kind" true (got.kind = Protocol.Overloaded);
    Alcotest.(check (option int)) "retry hint" (Some 30) got.retry_after_ms
  | _ -> Alcotest.fail "err reply did not round-trip"

let test_error_kind_names_roundtrip () =
  List.iter
    (fun k ->
      Alcotest.(check bool)
        (Protocol.error_kind_name k)
        true
        (Protocol.error_kind_of_name (Protocol.error_kind_name k) = Some k))
    [
      Protocol.Overloaded; Protocol.Stalled; Protocol.Cancelled;
      Protocol.Malformed_request; Protocol.Unknown_bench;
      Protocol.Unknown_policy; Protocol.Shutting_down; Protocol.Failed;
    ]

let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()

let test_framing_roundtrip () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> close_quiet a; close_quiet b)
    (fun () ->
      let r = Protocol.reader b in
      Protocol.write_frame a "first frame";
      Protocol.write_frame a "";
      Protocol.write_frame a "id=1 bench=hist";
      Alcotest.(check (option string)) "frame 1" (Some "first frame")
        (Protocol.read_frame r);
      Alcotest.(check (option string)) "empty frame" (Some "")
        (Protocol.read_frame r);
      Alcotest.(check (option string)) "frame 3" (Some "id=1 bench=hist")
        (Protocol.read_frame r);
      Unix.close a;
      (* re-close below is harmless *)
      Alcotest.(check (option string)) "EOF" None (Protocol.read_frame r))

let test_framing_malformed () =
  let check_bad name bytes =
    let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Fun.protect
      ~finally:(fun () -> close_quiet a; close_quiet b)
      (fun () ->
        let n = Unix.write_substring a bytes 0 (String.length bytes) in
        Alcotest.(check int) "wrote" (String.length bytes) n;
        Unix.close a;
        let r = Protocol.reader b in
        match Protocol.read_frame r with
        | exception Protocol.Malformed _ -> ()
        | Some _ | None -> Alcotest.fail (name ^ ": expected Malformed"))
  in
  check_bad "non-digit prefix" "xyz\npayload";
  check_bad "oversized length" "99999999\n";
  check_bad "truncated payload" "10\nabc"

let test_digest_hash () =
  let a = [| 1; 2; 3 |] in
  Alcotest.(check int) "deterministic" (Protocol.digest_hash a)
    (Protocol.digest_hash [| 1; 2; 3 |]);
  Alcotest.(check bool) "order-sensitive" true
    (Protocol.digest_hash [| 1; 2; 3 |] <> Protocol.digest_hash [| 3; 2; 1 |]);
  Alcotest.(check bool) "length-sensitive" true
    (Protocol.digest_hash [| 0 |] <> Protocol.digest_hash [| 0; 0 |]);
  Alcotest.(check bool) "non-negative" true (Protocol.digest_hash a >= 0)

(* ---------- serving ---------- *)

let test_serve_basic_digest () =
  let oracle = oracle_digest "hist" 0 in
  with_server (fun t ->
      let conn = connect t in
      Fun.protect ~finally:(fun () -> close_conn conn) @@ fun () ->
      (match rpc conn (Protocol.request ~id:1 ~bench:"hist" ()) with
      | Protocol.Ok_reply { id; digest; _ } ->
        Alcotest.(check int) "id echoed" 1 id;
        Alcotest.(check int) "digest matches sequential oracle" oracle digest
      | Protocol.Err_reply { kind; msg; _ } ->
        Alcotest.fail
          (Printf.sprintf "expected ok, got %s: %s"
             (Protocol.error_kind_name kind)
             msg));
      (* Cached prepared instance: same digest again. *)
      (match rpc conn (Protocol.request ~id:2 ~bench:"hist" ()) with
      | Protocol.Ok_reply { digest; _ } ->
        Alcotest.(check int) "repeat digest" oracle digest
      | Protocol.Err_reply _ -> Alcotest.fail "repeat request failed");
      (* A different per-request policy runs on its own pool and must still
         produce the canonical digest. *)
      match rpc conn (Protocol.request ~policy:"steal_half" ~id:3 ~bench:"hist" ()) with
      | Protocol.Ok_reply { digest; _ } ->
        Alcotest.(check int) "cross-policy digest" oracle digest
      | Protocol.Err_reply _ -> Alcotest.fail "steal_half request failed")

let test_serve_error_taxonomy () =
  with_server (fun t ->
      let conn = connect t in
      Fun.protect ~finally:(fun () -> close_conn conn) @@ fun () ->
      let kind_of req = err_kind (rpc conn req) in
      Alcotest.(check bool) "unknown bench" true
        (kind_of (Protocol.request ~id:1 ~bench:"nope" ())
        = Some Protocol.Unknown_bench);
      Alcotest.(check bool) "unknown policy" true
        (kind_of (Protocol.request ~policy:"warp9" ~id:2 ~bench:"hist" ())
        = Some Protocol.Unknown_policy);
      Alcotest.(check bool) "bad mode" true
        (kind_of (Protocol.request ~mode:"yolo" ~id:3 ~bench:"hist" ())
        = Some Protocol.Malformed_request);
      Alcotest.(check bool) "bad input" true
        (kind_of (Protocol.request ~input:"nope" ~id:4 ~bench:"hist" ())
        = Some Protocol.Malformed_request);
      Alcotest.(check bool) "scale cap" true
        (kind_of (Protocol.request ~scale:99 ~id:5 ~bench:"hist" ())
        = Some Protocol.Malformed_request);
      (* Unparseable payload: structured malformed reply, connection lives. *)
      let fd, r = conn in
      Protocol.write_frame fd "complete garbage";
      (match recv r with
      | Protocol.Err_reply { id; kind; _ } ->
        Alcotest.(check int) "id -1 for unparseable" (-1) id;
        Alcotest.(check bool) "malformed" true (kind = Protocol.Malformed_request)
      | Protocol.Ok_reply _ -> Alcotest.fail "garbage accepted");
      (* ...and the server still serves. *)
      match rpc conn (Protocol.request ~id:6 ~bench:"hist" ()) with
      | Protocol.Ok_reply _ -> ()
      | Protocol.Err_reply _ -> Alcotest.fail "server wedged after rejects")

let test_serve_deadline_stall () =
  with_server (fun t ->
      let conn = connect t in
      Fun.protect ~finally:(fun () -> close_conn conn) @@ fun () ->
      (match
         rpc conn
           (Protocol.request ~deadline_s:0.05 ~spin_ms:2000 ~id:1 ~bench:"spin" ())
       with
      | Protocol.Err_reply { kind; _ } ->
        Alcotest.(check bool) "stalled" true (kind = Protocol.Stalled)
      | Protocol.Ok_reply _ -> Alcotest.fail "expected stalled reply");
      (* The stall must not poison the pool. *)
      match rpc conn (Protocol.request ~id:2 ~bench:"hist" ()) with
      | Protocol.Ok_reply _ -> ()
      | Protocol.Err_reply { kind; msg; _ } ->
        Alcotest.fail
          (Printf.sprintf "pool poisoned after stall: %s %s"
             (Protocol.error_kind_name kind)
             msg))

let test_serve_overload_shed () =
  with_server ~max_queue:2 (fun t ->
      let cfg =
        {
          (Loadgen.default_config ~socket_path:(Serve.socket_path t)) with
          clients = 2;
          requests_per_client = 4;
          seed = 11;
          benches = [ "spin" ];
          spin_ms = 40;
          mean_gap_ms = 1;
          burst = 10;
          max_retries = 2;
          backoff_base_ms = 10;
          quiet = true;
        }
      in
      match Loadgen.run cfg with
      | Error e -> Alcotest.fail e
      | Ok r ->
        Alcotest.(check bool) "sheds occurred" true (r.Loadgen.shed_replies > 0);
        Alcotest.(check bool) "some requests succeeded" true (r.Loadgen.ok > 0);
        Alcotest.(check int) "nothing lost" 0 r.Loadgen.lost;
        Alcotest.(check int) "no protocol errors" 0 r.Loadgen.protocol_errors;
        Alcotest.(check int) "every request accounted" r.Loadgen.sent
          (Loadgen.accounted r);
        let s = Serve.stats t in
        Alcotest.(check bool) "server counted sheds" true (s.Serve.shed > 0);
        Alcotest.(check bool) "occupancy bounded" true
          (s.Serve.max_occupancy <= 2))

let test_serve_disconnect_cancels () =
  with_server (fun t ->
      let conn = connect t in
      let fd, _ = conn in
      Protocol.write_frame fd
        (Protocol.request_line
           (Protocol.request ~spin_ms:5000 ~id:1 ~bench:"spin" ()));
      (* Let the request reach the executor, then vanish. *)
      Unix.sleepf 0.2;
      close_conn conn;
      (* The cancel must free the executor long before the 5 s of spin. *)
      let t0 = Unix.gettimeofday () in
      let conn2 = connect t in
      Fun.protect ~finally:(fun () -> close_conn conn2) @@ fun () ->
      (match rpc conn2 (Protocol.request ~id:2 ~bench:"hist" ()) with
      | Protocol.Ok_reply _ -> ()
      | Protocol.Err_reply _ -> Alcotest.fail "request after disconnect failed");
      Alcotest.(check bool) "executor freed promptly" true
        (Unix.gettimeofday () -. t0 < 4.0);
      let s = Serve.stats t in
      Alcotest.(check bool) "cancellation recorded" true
        (s.Serve.cancelled >= 1);
      Alcotest.(check bool) "disconnect recorded" true
        (s.Serve.disconnects >= 1))

let test_serve_drain_replies_to_queued () =
  with_server (fun t ->
      let conn = connect t in
      let fd, r = conn in
      let n = 5 in
      for i = 1 to n do
        Protocol.write_frame fd
          (Protocol.request_line
             (Protocol.request ~spin_ms:100 ~id:i ~bench:"spin" ()))
      done;
      Unix.sleepf 0.05;
      (* Drain while most of the pipeline is still queued. *)
      Serve.stop t;
      let seen = Hashtbl.create 8 in
      (try
         let rec go () =
           match Protocol.read_frame r with
           | None -> ()
           | Some line ->
             (match Protocol.parse_reply line with
             | Ok reply ->
               let id = Protocol.reply_id reply in
               Alcotest.(check bool)
                 (Printf.sprintf "single reply for id %d" id)
                 false (Hashtbl.mem seen id);
               Hashtbl.replace seen id reply
             | Error e -> Alcotest.fail ("bad drain reply: " ^ e));
             go ()
         in
         go ()
       with Protocol.Malformed _ | Unix.Unix_error _ -> ());
      close_conn conn;
      Alcotest.(check int) "every queued request got a reply" n
        (Hashtbl.length seen);
      Hashtbl.iter
        (fun id reply ->
          match reply with
          | Protocol.Ok_reply _ -> ()
          | Protocol.Err_reply { kind; _ } ->
            Alcotest.(check bool)
              (Printf.sprintf "id %d: ok, shutdown or cancelled" id)
              true
              (kind = Protocol.Shutting_down || kind = Protocol.Cancelled))
        seen)

(* ---------- the stats verb and the live metrics plane ---------- *)

let stats_snapshot conn =
  let fd, r = conn in
  Protocol.write_frame fd (Protocol.request_line (Protocol.stats_request ~id:0));
  match Protocol.read_frame r with
  | None -> Alcotest.fail "EOF on stats request"
  | Some payload -> (
    match Top.parse_snapshot (Bench_json.of_string payload) with
    | Ok s -> s
    | Error e -> Alcotest.fail ("stats reply: " ^ e))

let test_serve_stats_verb () =
  with_server (fun t ->
      let conn = connect t in
      Fun.protect ~finally:(fun () -> close_conn conn) @@ fun () ->
      let get name (s : Top.snap) =
        Option.value (List.assoc_opt name s.Top.counters) ~default:0
      in
      let hist_count name (s : Top.snap) =
        match List.assoc_opt name s.Top.hists with
        | Some h -> h.Top.count
        | None -> 0
      in
      (* Counters are process-global (several servers run in this binary),
         so the reconciliation is on deltas between two snapshots taken
         over the same connection. *)
      let s0 = stats_snapshot conn in
      let n = 5 in
      for i = 1 to n do
        match rpc conn (Protocol.request ~id:i ~bench:"hist" ()) with
        | Protocol.Ok_reply _ -> ()
        | Protocol.Err_reply { kind; msg; _ } ->
          Alcotest.fail
            (Printf.sprintf "request %d: %s %s" i
               (Protocol.error_kind_name kind)
               msg)
      done;
      let s1 = stats_snapshot conn in
      Alcotest.(check int) "serve.ok advanced by the replies" n
        (get "serve.ok" s1 - get "serve.ok" s0);
      Alcotest.(check int) "serve.accepted advanced too" n
        (get "serve.accepted" s1 - get "serve.accepted" s0);
      Alcotest.(check int) "exec histogram sampled each ok" n
        (hist_count "serve.exec_ms" s1 - hist_count "serve.exec_ms" s0);
      Alcotest.(check bool) "stats requests counted" true
        (get "serve.stats_requests" s1 > get "serve.stats_requests" s0);
      (* The full invariant set rpb top --check runs in CI. *)
      (match Top.check_invariants ~prev:(Some s0) s1 with
      | Ok () -> ()
      | Error msg -> Alcotest.fail ("invariant: " ^ msg));
      (* Unknown verbs reject without killing the connection. *)
      (match
         rpc conn (Protocol.request ~verb:"selfdestruct" ~id:99 ~bench:"-" ())
       with
      | Protocol.Err_reply { kind = Protocol.Malformed_request; _ } -> ()
      | _ -> Alcotest.fail "unknown verb should reject as malformed");
      match rpc conn (Protocol.request ~id:100 ~bench:"hist" ()) with
      | Protocol.Ok_reply _ -> ()
      | Protocol.Err_reply _ ->
        Alcotest.fail "connection should survive an unknown verb")

(* ---------- the health verb and budget-aware admission ---------- *)

let test_serve_health_verb () =
  (* Without --slo the health plane answers an objective-less ok with
     untightened admission. *)
  with_server (fun t ->
      match Top.fetch_health ~socket_path:(Serve.socket_path t) () with
      | Error e -> Alcotest.fail ("health: " ^ e)
      | Ok j ->
        Alcotest.(check string) "status" "ok"
          (J.get_str (J.member "status" j));
        Alcotest.(check int) "no objectives" 0
          (List.length (J.get_list (J.member "objectives" j)));
        let adm = J.member "admission" j in
        Alcotest.(check int) "full cap" 16
          (J.get_int (J.member "effective_max_queue" adm));
        Alcotest.(check int) "unit retry scale" 1
          (J.get_int (J.member "retry_scale" adm)))

let test_serve_health_degrades () =
  (* A deliberately impossible latency objective (p95 < 1 us) with
     sub-second burn windows: every request is budget burn, so the health
     verb must degrade to unhealthy and report quartered admission while
     load keeps arriving. *)
  let slo =
    match Rpb_obs.Slo.parse_spec "latency:serve.exec_ms:p95<0.001" with
    | Stdlib.Ok s -> s
    | Stdlib.Error e -> Alcotest.fail e
  in
  let cfg =
    {
      (Serve.default_config ~socket_path:(fresh_sock ())) with
      threads = 2;
      max_queue = 16;
      drain_grace_s = 5.0;
      quiet = true;
      metrics_interval_s = 0.1;
      slo = Some slo;
      slo_fast_s = 0.5;
      slo_slow_s = 2.0;
    }
  in
  match Serve.start cfg with
  | Error e -> Alcotest.fail ("server start: " ^ e)
  | Ok t ->
    Fun.protect ~finally:(fun () -> Serve.stop t) @@ fun () ->
    let conn = connect t in
    Fun.protect ~finally:(fun () -> close_conn conn) @@ fun () ->
    let deadline = Unix.gettimeofday () +. 20.0 in
    let rec drive i =
      (* keep the burn alive while polling: one request, one health probe *)
      (match rpc conn (Protocol.request ~id:i ~bench:"spin" ~spin_ms:2 ()) with
      | Protocol.Ok_reply _ | Protocol.Err_reply _ -> ());
      match Top.fetch_health ~socket_path:(Serve.socket_path t) () with
      | Error e -> Alcotest.fail ("health: " ^ e)
      | Ok j ->
        if J.get_str (J.member "status" j) = "unhealthy" then j
        else if Unix.gettimeofday () > deadline then
          Alcotest.fail "server never degraded to unhealthy"
        else begin
          Unix.sleepf 0.05;
          drive (i + 1)
        end
    in
    let j = drive 1 in
    Alcotest.(check int) "level encoding" 2 (J.get_int (J.member "level" j));
    let adm = J.member "admission" j in
    Alcotest.(check int) "admission quartered under Page" 4
      (J.get_int (J.member "effective_max_queue" adm));
    Alcotest.(check int) "retry hints scaled 4x" 4
      (J.get_int (J.member "retry_scale" adm));
    (match J.get_list (J.member "objectives" j) with
    | [ o ] ->
      Alcotest.(check string) "objective paged" "page"
        (J.get_str (J.member "level" o));
      Alcotest.(check bool) "burns reported positive" true
        (J.get_float (J.member "fast_burn" o) > 0.)
    | os -> Alcotest.failf "expected one objective, got %d" (List.length os));
    (* the slo.* gauges pass the rpb top --check invariants live *)
    (match Top.fetch ~socket_path:(Serve.socket_path t) () with
    | Error e -> Alcotest.fail ("stats: " ^ e)
    | Ok s -> (
      match Top.check_invariants ~prev:None s with
      | Ok () -> ()
      | Error msg -> Alcotest.fail ("slo gauge invariant: " ^ msg)))

(* ---------- the seeded overload/fault soak ---------- *)

let test_serve_fault_soak () =
  (* Oracle digests first: Fault injection is process-global. *)
  let benches = [ "hist"; "sort"; "sa" ] in
  let oracles = List.map (fun b -> (b, oracle_digest b 0)) benches in
  with_server ~max_queue:8
    ~preload:(List.map (fun b -> (b, None, 0)) benches)
    (fun t ->
      Pool.Fault.enable
        {
          Pool.Fault.seed = 7;
          task_exn = 0.02;
          steal_delay = 0.05;
          worker_stall = 0.05;
          spawn_fail = 0.1;
          delay_us = 50;
        };
      let soak_result =
        Fun.protect ~finally:Pool.Fault.disable @@ fun () ->
        let cfg =
          {
            (Loadgen.default_config ~socket_path:(Serve.socket_path t)) with
            clients = 4;
            requests_per_client = 15;
            seed = 1234;
            benches = benches @ [ "spin" ];
            spin_ms = 10;
            mean_gap_ms = 2;
            policies = [ "default"; "lazy" ];
            kill_every = 7;
            max_retries = 3;
            backoff_base_ms = 5;
            quiet = true;
          }
        in
        Loadgen.run cfg
      in
      (match soak_result with
      | Error e -> Alcotest.fail e
      | Ok r ->
        Alcotest.(check int) "zero lost replies" 0 r.Loadgen.lost;
        Alcotest.(check int) "zero protocol errors" 0
          r.Loadgen.protocol_errors;
        Alcotest.(check int) "zero digest mismatches" 0
          r.Loadgen.digest_mismatches;
        Alcotest.(check int) "every request accounted exactly once"
          r.Loadgen.sent (Loadgen.accounted r);
        Alcotest.(check bool) "successes under fault injection" true
          (r.Loadgen.ok > 0));
      (* Faults off again: the server must still produce oracle digests —
         the pools survived the soak un-poisoned. *)
      let conn = connect t in
      Fun.protect ~finally:(fun () -> close_conn conn) @@ fun () ->
      List.iteri
        (fun i (bench, oracle) ->
          match rpc conn (Protocol.request ~id:(9000 + i) ~bench ()) with
          | Protocol.Ok_reply { digest; _ } ->
            Alcotest.(check int)
              (bench ^ " digest after soak")
              oracle digest
          | Protocol.Err_reply { kind; msg; _ } ->
            Alcotest.fail
              (Printf.sprintf "%s after soak: %s %s" bench
                 (Protocol.error_kind_name kind)
                 msg))
        oracles)

(* ---------- latency ---------- *)

let test_latency_percentiles () =
  let l = Latency.create () in
  for i = 1 to 100 do
    Latency.add l (float_of_int i)
  done;
  let s = Latency.summarize l in
  Alcotest.(check int) "count" 100 s.Latency.count;
  Alcotest.(check (float 1e-9)) "p50" 50. s.Latency.p50_ms;
  Alcotest.(check (float 1e-9)) "p95" 95. s.Latency.p95_ms;
  Alcotest.(check (float 1e-9)) "p99" 99. s.Latency.p99_ms;
  Alcotest.(check (float 1e-9)) "max" 100. s.Latency.max_ms;
  Alcotest.(check (float 1e-9)) "mean" 50.5 s.Latency.mean_ms;
  let json = Latency.summary_to_json s in
  let back = Latency.summary_of_json json in
  Alcotest.(check int) "json round-trip count" s.Latency.count
    back.Latency.count

let test_latency_empty () =
  let s = Latency.summarize (Latency.create ()) in
  Alcotest.(check int) "count" 0 s.Latency.count;
  Alcotest.(check (float 1e-9)) "p99" 0. s.Latency.p99_ms

let () =
  Alcotest.run "serve"
    [
      ( "protocol",
        [
          Alcotest.test_case "request round-trip" `Quick test_request_roundtrip;
          Alcotest.test_case "request defaults" `Quick test_request_defaults;
          Alcotest.test_case "request rejects" `Quick test_request_rejects;
          Alcotest.test_case "reply round-trip" `Quick test_reply_roundtrip;
          Alcotest.test_case "error kind names" `Quick
            test_error_kind_names_roundtrip;
          Alcotest.test_case "framing round-trip" `Quick test_framing_roundtrip;
          Alcotest.test_case "framing malformed" `Quick test_framing_malformed;
          Alcotest.test_case "digest hash" `Quick test_digest_hash;
        ] );
      ( "latency",
        [
          Alcotest.test_case "percentiles" `Quick test_latency_percentiles;
          Alcotest.test_case "empty summary" `Quick test_latency_empty;
        ] );
      ( "server",
        [
          Alcotest.test_case "digest matches oracle" `Quick
            test_serve_basic_digest;
          Alcotest.test_case "error taxonomy" `Quick test_serve_error_taxonomy;
          Alcotest.test_case "deadline stall" `Quick test_serve_deadline_stall;
          Alcotest.test_case "overload shed" `Quick test_serve_overload_shed;
          Alcotest.test_case "disconnect cancels" `Quick
            test_serve_disconnect_cancels;
          Alcotest.test_case "drain replies to queued" `Quick
            test_serve_drain_replies_to_queued;
          Alcotest.test_case "stats verb reconciles" `Quick
            test_serve_stats_verb;
          Alcotest.test_case "health verb without slo" `Quick
            test_serve_health_verb;
          Alcotest.test_case "health degrades and tightens admission" `Quick
            test_serve_health_degrades;
        ] );
      ( "soak",
        [
          Alcotest.test_case "seeded fault soak" `Quick test_serve_fault_soak;
        ] );
    ]
