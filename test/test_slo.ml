(* The SLO engine: spec parsing, burn-rate arithmetic against hand-computed
   answers, the two-window escalation rule, hysteresis stepping, restart
   re-baselining, the global level register's allocation contract, the
   admission-tightening maps, and the health/replay JSON surfaces. *)

module J = Rpb_benchmarks.Bench_json
module Slo = Rpb_obs.Slo

let check_float name expected actual =
  Alcotest.(check (float 1e-9)) name expected actual

(* Short windows so tests hand-place samples inside/outside them; hysteresis
   2 so de-escalation is observable in few feeds. *)
let test_params =
  { Slo.fast_s = 10.; slow_s = 100.; page_burn = 14.4; warn_burn = 6.;
    hysteresis = 2 }

let avail_spec target =
  match Slo.parse_spec (Printf.sprintf "avail:%g" target) with
  | Stdlib.Ok s -> s
  | Stdlib.Error e -> Alcotest.fail ("avail spec: " ^ e)

(* ---------- spec parsing ---------- *)

let test_parse_roundtrip () =
  let ok s =
    match Slo.parse_spec s with
    | Stdlib.Ok spec -> spec
    | Stdlib.Error e -> Alcotest.failf "parse %s: %s" s e
  in
  let spec = ok "latency:serve.exec_ms:p95<5;avail:0.99" in
  Alcotest.(check (list string)) "names"
    [ "serve.exec_ms.p95"; "availability" ]
    (List.map fst spec);
  Alcotest.(check string) "canonical round-trip"
    "latency:serve.exec_ms:p95<5;avail:0.99"
    (Slo.spec_to_string spec);
  (* the long avail form names its own counters *)
  let custom = ok "avail:db:db.ok:db.err+db.timeout:0.999" in
  (match custom with
  | [ (name, Slo.Availability { good; bad; target }) ] ->
    Alcotest.(check string) "custom name" "db" name;
    Alcotest.(check (list string)) "good set" [ "db.ok" ] good;
    Alcotest.(check (list string)) "bad set" [ "db.err"; "db.timeout" ] bad;
    check_float "target" 0.999 target
  | _ -> Alcotest.fail "custom avail did not parse to one objective");
  Alcotest.(check string) "custom form round-trips"
    "avail:db:db.ok:db.err+db.timeout:0.999"
    (Slo.spec_to_string custom);
  (* whitespace and empty items are tolerated *)
  Alcotest.(check int) "blank items skipped" 2
    (List.length (ok " avail:0.9 ;; latency:h:p50<1 "))

let test_parse_errors () =
  let bad s =
    match Slo.parse_spec s with
    | Stdlib.Ok _ -> Alcotest.failf "%s should not parse" s
    | Stdlib.Error _ -> ()
  in
  List.iter bad
    [
      "";  (* empty spec *)
      ";;";
      "garbage";
      "latency:h:95<5";  (* no p prefix *)
      "latency:h:p0<5";  (* pctl out of (0,100) *)
      "latency:h:p100<5";
      "latency:h:p95<0";  (* non-positive target *)
      "latency::p95<5";  (* empty histogram *)
      "avail:0";  (* target out of (0,1) *)
      "avail:1";
      "avail:1.5";
      "avail:db::bad:0.9";  (* empty good set *)
      "avail:0.9;avail:0.99";  (* duplicate objective name *)
    ]

let test_budgets () =
  check_float "p95 budget" 0.05
    (Slo.objective_budget
       (Slo.Latency { hist = "h"; pctl = 95.; target_ms = 5. }));
  check_float "avail 0.99 budget" 0.01
    (Slo.objective_budget
       (Slo.Availability { good = []; bad = []; target = 0.99 }))

let test_levels () =
  List.iter
    (fun (l, i, n, s) ->
      Alcotest.(check int) "index" i (Slo.level_index l);
      Alcotest.(check bool) "of_index round-trips" true
        (Slo.level_of_index i = l);
      Alcotest.(check string) "name" n (Slo.level_name l);
      Alcotest.(check string) "status" s (Slo.status_name l))
    [ (Slo.Ok, 0, "ok", "ok"); (Slo.Warn, 1, "warn", "degraded");
      (Slo.Page, 2, "page", "unhealthy") ];
  Alcotest.(check bool) "out-of-range indices clamp" true
    (Slo.level_of_index (-3) = Slo.Ok && Slo.level_of_index 9 = Slo.Page)

let test_create_validation () =
  let raises f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  raises (fun () -> Slo.create []);
  raises (fun () ->
      Slo.create ~params:{ test_params with fast_s = 20.; slow_s = 10. }
        (avail_spec 0.99));
  raises (fun () ->
      Slo.create ~params:{ test_params with hysteresis = 0 } (avail_spec 0.99));
  (* feed arity is checked *)
  let t = Slo.create ~params:test_params (avail_spec 0.99) in
  raises (fun () -> Slo.feed t ~now_s:0. ~started_s:0. [||])

(* ---------- burn arithmetic and escalation ---------- *)

let feed1 t ~now total bad =
  match Slo.feed t ~now_s:now ~started_s:0. [| (total, bad) |] with
  | [ v ] -> v
  | vs -> Alcotest.failf "expected one verdict, got %d" (List.length vs)

let test_burn_hand_computed () =
  (* budget 0.01; both windows share the t=0 baseline early on, so the
     burns are delta-bad / delta-total / 0.01. *)
  let t = Slo.create ~params:test_params (avail_spec 0.99) in
  let v0 = feed1 t ~now:0. 100. 0. in
  check_float "no history, no burn" 0. v0.Slo.v_fast_burn;
  Alcotest.(check bool) "starts Ok" true (v0.Slo.v_level = Slo.Ok);
  (* +100 requests, 10 bad: error rate 0.1, burn 10 — warns, not pages *)
  let v1 = feed1 t ~now:1. 200. 10. in
  check_float "fast burn 10x" 10. v1.Slo.v_fast_burn;
  check_float "slow burn 10x" 10. v1.Slo.v_slow_burn;
  Alcotest.(check bool) "10x is Warn" true (v1.Slo.v_level = Slo.Warn);
  (* cumulative 30 bad / 200 total since baseline: er 0.15, burn 15 *)
  let v2 = feed1 t ~now:2. 300. 30. in
  check_float "burn 15x" 15. v2.Slo.v_fast_burn;
  Alcotest.(check bool) "15x pages" true (v2.Slo.v_level = Slo.Page);
  (* budget: cumulative er 0.15 over a 0.01 budget = 15 budgets spent *)
  check_float "budget overspent" (-14.) v2.Slo.v_budget_remaining

let test_two_window_rule () =
  (* A burst of errors older than the fast window must NOT (re-)escalate:
     the fast window is clean, and min(fast, slow) decides.  The burst
     pages when it happens; hysteresis then walks the level back to Ok
     while the slow window is STILL over the page threshold — and the
     stale slow burn alone cannot push it back up. *)
  let t = Slo.create ~params:test_params (avail_spec 0.99) in
  ignore (feed1 t ~now:0. 0. 0.);
  Alcotest.(check bool) "the burst pages on both windows" true
    ((feed1 t ~now:1. 100. 50.).Slo.v_level = Slo.Page);
  (* calm, fast-window-clean evaluations: 2 to step Page->Warn, 2 more to
     reach Ok (hysteresis 2) *)
  ignore (feed1 t ~now:85. 200. 50.);
  ignore (feed1 t ~now:90. 250. 50.);
  ignore (feed1 t ~now:92. 270. 50.);
  ignore (feed1 t ~now:94. 280. 50.);
  let v = feed1 t ~now:96. 300. 50. in
  (* fast edge 86 -> base t=85: no new bad -> 0.  slow edge -4 -> oldest
     t=0: 50/300 / 0.01 = 16.7x, still over the 14.4x page threshold. *)
  check_float "fast window clean" 0. v.Slo.v_fast_burn;
  check_float "slow window still burning" (50. /. 300. /. 0.01)
    v.Slo.v_slow_burn;
  Alcotest.(check bool) "slow burn alone exceeds the page threshold" true
    (v.Slo.v_slow_burn >= test_params.Slo.page_burn);
  Alcotest.(check bool) "stale burn alone never escalates" true
    (v.Slo.v_level = Slo.Ok)

let test_hysteresis_stepping () =
  let t = Slo.create ~params:test_params (avail_spec 0.99) in
  ignore (feed1 t ~now:0. 100. 0.);
  ignore (feed1 t ~now:1. 200. 10.);  (* Warn *)
  let v = feed1 t ~now:2. 300. 30. in
  Alcotest.(check bool) "paged" true (v.Slo.v_level = Slo.Page);
  (* Calm evaluations: burns stay high in the truncated window until the
     bad samples age out, so jump past the slow window to get clean ones. *)
  let calm i = feed1 t ~now:(200. +. float_of_int i) 400. 30. in
  let c1 = calm 0 in
  check_float "calm fast burn" 0. c1.Slo.v_fast_burn;
  Alcotest.(check bool) "one calm eval holds Page (hysteresis 2)" true
    (c1.Slo.v_level = Slo.Page);
  Alcotest.(check bool) "second calm eval steps down one level only" true
    ((calm 1).Slo.v_level = Slo.Warn);
  Alcotest.(check bool) "third holds Warn" true ((calm 2).Slo.v_level = Slo.Warn);
  Alcotest.(check bool) "fourth reaches Ok" true ((calm 3).Slo.v_level = Slo.Ok);
  (* re-escalation is immediate, no hysteresis on the way up *)
  Alcotest.(check bool) "fresh burn re-escalates at once" true
    ((feed1 t ~now:205. 500. 130.).Slo.v_level = Slo.Page)

let test_restart_rebaseline () =
  let t = Slo.create ~params:test_params (avail_spec 0.99) in
  ignore (Slo.feed t ~now_s:0. ~started_s:1000. [| (100., 0.) |]);
  ignore (Slo.feed t ~now_s:1. ~started_s:1000. [| (200., 0.) |]);
  (* restart: started_s changes and the counters drop.  The offsets fold
     the pre-restart totals in, so no delta ever goes negative. *)
  let v =
    match Slo.feed t ~now_s:2. ~started_s:2000. [| (10., 5.) |] with
    | [ v ] -> v
    | _ -> Alcotest.fail "arity"
  in
  Alcotest.(check bool) "burns never negative across a restart" true
    (v.Slo.v_fast_burn >= 0. && v.Slo.v_slow_burn >= 0.);
  (* 5 bad over 10 post-restart requests: er 0.5, burn 50 on both windows
     (baseline t=0 adjusted total 100 -> delta 110 total 5 bad? no: the
     adjusted cumulative is 210 total 5 bad, t=0 sample was 100/0, so
     er = 5/110). *)
  check_float "adjusted delta arithmetic" (5. /. 110. /. 0.01)
    v.Slo.v_fast_burn;
  (* a cumulative value going backwards WITHOUT started_s changing is the
     same restart, detected from the counters alone *)
  let t2 = Slo.create ~params:test_params (avail_spec 0.99) in
  ignore (Slo.feed t2 ~now_s:0. ~started_s:0. [| (100., 10.) |]);
  let v2 =
    match Slo.feed t2 ~now_s:1. ~started_s:0. [| (5., 0.) |] with
    | [ v ] -> v
    | _ -> Alcotest.fail "arity"
  in
  Alcotest.(check bool) "counter-drop restart re-baselines too" true
    (v2.Slo.v_fast_burn >= 0. && v2.Slo.v_budget_remaining <= 1.)

let test_overall () =
  Alcotest.(check bool) "empty is Ok" true (Slo.overall [] = Slo.Ok);
  let v name level =
    { Slo.v_name = name; v_level = level; v_fast_burn = 0.; v_slow_burn = 0.;
      v_budget_remaining = 1. }
  in
  Alcotest.(check bool) "worst level wins" true
    (Slo.overall [ v "a" Slo.Ok; v "b" Slo.Page; v "c" Slo.Warn ] = Slo.Page)

(* ---------- the global register and admission maps ---------- *)

let test_register_and_admission () =
  Slo.reset_current ();
  Alcotest.(check bool) "defaults to Ok" true (Slo.current_level () = Slo.Ok);
  Slo.set_current Slo.Warn;
  Alcotest.(check bool) "publishes" true (Slo.current_level () = Slo.Warn);
  Slo.reset_current ();
  Alcotest.(check bool) "reset returns to Ok" true
    (Slo.current_level () = Slo.Ok);
  List.iter
    (fun (l, scale, cap16) ->
      Alcotest.(check int) "retry scale" scale (Slo.admission_scale l);
      Alcotest.(check int) "cap 16" cap16 (Slo.effective_queue_cap l 16))
    [ (Slo.Ok, 1, 16); (Slo.Warn, 2, 8); (Slo.Page, 4, 4) ];
  Alcotest.(check int) "cap never drops below 1" 1
    (Slo.effective_queue_cap Slo.Page 2);
  Alcotest.(check int) "cap 1 survives Page" 1
    (Slo.effective_queue_cap Slo.Page 1)

(* The ISSUE's acceptance pin: with no engine running, the admission path's
   SLO consultation is one atomic load — no allocation.  Same contract (and
   same measurement technique) as the Metrics switch. *)
let test_register_allocation_free () =
  Slo.reset_current ();
  ignore (Sys.opaque_identity (Slo.current_level ()));
  let before = Gc.allocated_bytes () in
  for _ = 1 to 1000 do
    ignore (Sys.opaque_identity (Slo.current_level ()))
  done;
  let per_read = (Gc.allocated_bytes () -. before) /. 1000.0 in
  Alcotest.(check bool)
    (Printf.sprintf "current_level allocation-free (%.1f B)" per_read)
    true (per_read < 16.0)

(* ---------- snapshot extraction ---------- *)

let metrics_doc ~ts ?(started = 0.) ?(ok = 0) ?(failed = 0) ?(buckets = [])
    () =
  J.Obj
    [
      ("kind", J.Str "metrics");
      ("ts_s", J.Float ts);
      ("started_s", J.Float started);
      ( "counters",
        J.Obj [ ("serve.ok", J.Int ok); ("serve.failed", J.Int failed) ] );
      ( "histograms",
        J.Obj
          [
            ( "serve.exec_ms",
              J.Obj
                [
                  ( "count",
                    J.Int (List.fold_left (fun a (_, n) -> a + n) 0 buckets) );
                  ( "buckets",
                    J.List
                      (List.map
                         (fun (b, n) -> J.List [ J.Int b; J.Int n ])
                         buckets) );
                ] );
          ] );
    ]

let test_feed_snapshot () =
  let spec =
    match Slo.parse_spec "latency:serve.exec_ms:p95<5;avail:0.99" with
    | Stdlib.Ok s -> s
    | Stdlib.Error e -> Alcotest.fail e
  in
  let t = Slo.create ~params:test_params spec in
  Alcotest.(check bool) "non-metrics docs are ignored" true
    (Slo.feed_snapshot t (J.Obj [ ("kind", J.Str "serve") ]) = None);
  (* Bucket 22 is [2^22, 2^23) ns ~ [4.19, 8.39) ms: it straddles the 5 ms
     target, so its lower bound is below the target and the whole bucket is
     credited as good.  Bucket 23 starts at 8.39 ms >= 5 ms: bad. *)
  ignore (Slo.feed_snapshot t (metrics_doc ~ts:0. ()));
  let vs =
    match
      Slo.feed_snapshot t
        (metrics_doc ~ts:1. ~ok:100 ~failed:0
           ~buckets:[ (10, 50); (22, 30); (23, 20) ]
           ())
    with
    | Some vs -> vs
    | None -> Alcotest.fail "metrics doc rejected"
  in
  (match vs with
  | [ lat; avail ] ->
    (* 20 of 100 samples at/above the target against a 0.05 budget *)
    check_float "straddling bucket credited as good" (0.2 /. 0.05)
      lat.Slo.v_fast_burn;
    Alcotest.(check string) "latency verdict name" "serve.exec_ms.p95"
      lat.Slo.v_name;
    check_float "clean availability" 0. avail.Slo.v_fast_burn
  | _ -> Alcotest.fail "expected two verdicts");
  Alcotest.(check int) "verdicts are retained" 2 (List.length (Slo.verdicts t))

(* ---------- health and replay JSON ---------- *)

let test_health_json () =
  let v =
    { Slo.v_name = "availability"; v_level = Slo.Page; v_fast_burn = 20.;
      v_slow_burn = 16.; v_budget_remaining = -0.5 }
  in
  let j = Slo.health_json ~verdicts:[ v ] ~max_queue:16 in
  Alcotest.(check string) "kind" "health" (J.get_str (J.member "kind" j));
  Alcotest.(check string) "status vocabulary" "unhealthy"
    (J.get_str (J.member "status" j));
  Alcotest.(check int) "level encoding" 2 (J.get_int (J.member "level" j));
  let adm = J.member "admission" j in
  Alcotest.(check int) "full cap" 16 (J.get_int (J.member "max_queue" adm));
  Alcotest.(check int) "quarter cap under Page" 4
    (J.get_int (J.member "effective_max_queue" adm));
  Alcotest.(check int) "4x retry scale" 4
    (J.get_int (J.member "retry_scale" adm));
  (match J.get_list (J.member "objectives" j) with
  | [ o ] ->
    Alcotest.(check string) "objective level" "page"
      (J.get_str (J.member "level" o))
  | _ -> Alcotest.fail "one objective expected");
  (* the document survives a print/parse cycle *)
  Alcotest.(check string) "round-trips" "health"
    (J.get_str (J.member "kind" (J.of_string (J.to_string j))))

let test_replay_and_violation () =
  let spec = avail_spec 0.99 in
  let docs =
    [
      metrics_doc ~ts:0. ();
      J.Obj [ ("kind", J.Str "profile") ];  (* interleaved slow-request doc *)
      metrics_doc ~ts:1. ~ok:90 ~failed:10 ();
      metrics_doc ~ts:2. ~ok:160 ~failed:40 ();
    ]
  in
  let r = Slo.replay ~params:test_params spec docs in
  Alcotest.(check int) "snapshots fed" 3 r.Slo.r_fed;
  Alcotest.(check int) "non-metrics skipped" 1 r.Slo.r_skipped;
  Alcotest.(check bool) "the run paged" true (r.Slo.r_worst = Slo.Page);
  Alcotest.(check bool) "paging violates" true (Slo.violated r);
  Alcotest.(check int) "series covers every fed snapshot" 3
    (List.length r.Slo.r_series);
  let j = Slo.replay_to_json r ~params:test_params ~spec in
  Alcotest.(check string) "kind" "slo" (J.get_str (J.member "kind" j));
  Alcotest.(check bool) "violation flag" true
    (J.get_bool (J.member "violation" j));
  Alcotest.(check string) "worst" "page" (J.get_str (J.member "worst" j));
  Alcotest.(check string) "spec round-trips" "avail:0.99"
    (J.get_str (J.member "spec" j));
  Alcotest.(check int) "series serialized" 3
    (List.length (J.get_list (J.member "series" j)));
  (match J.get_list (J.member "objectives" j) with
  | [ o ] ->
    check_float "budget member" 0.01 (J.get_float (J.member "budget" o));
    Alcotest.(check string) "final verdict attached" "availability"
      (J.get_str (J.member "name" (J.member "final" o)))
  | _ -> Alcotest.fail "one objective expected");
  (* a clean stream neither pages nor violates *)
  let clean =
    Slo.replay ~params:test_params spec
      [ metrics_doc ~ts:0. (); metrics_doc ~ts:1. ~ok:100 () ]
  in
  Alcotest.(check bool) "clean run is ok" true (clean.Slo.r_worst = Slo.Ok);
  Alcotest.(check bool) "no violation" false (Slo.violated clean);
  (* an empty stream fed nothing *)
  Alcotest.(check int) "empty stream" 0
    (Slo.replay ~params:test_params spec []).Slo.r_fed

let () =
  Alcotest.run "slo"
    [
      ( "spec",
        [
          Alcotest.test_case "parse round-trip" `Quick test_parse_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
          Alcotest.test_case "budgets" `Quick test_budgets;
          Alcotest.test_case "levels" `Quick test_levels;
          Alcotest.test_case "create validation" `Quick test_create_validation;
        ] );
      ( "burn",
        [
          Alcotest.test_case "hand-computed burns" `Quick
            test_burn_hand_computed;
          Alcotest.test_case "two-window rule" `Quick test_two_window_rule;
          Alcotest.test_case "hysteresis stepping" `Quick
            test_hysteresis_stepping;
          Alcotest.test_case "restart re-baseline" `Quick
            test_restart_rebaseline;
          Alcotest.test_case "overall" `Quick test_overall;
        ] );
      ( "register",
        [
          Alcotest.test_case "register and admission maps" `Quick
            test_register_and_admission;
          Alcotest.test_case "allocation-free read" `Quick
            test_register_allocation_free;
        ] );
      ( "json",
        [
          Alcotest.test_case "snapshot extraction" `Quick test_feed_snapshot;
          Alcotest.test_case "health document" `Quick test_health_json;
          Alcotest.test_case "replay and violation" `Quick
            test_replay_and_violation;
        ] );
    ]
