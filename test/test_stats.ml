(* Tests for the statistics layer behind `rpb compare` (Rpb_obs.Stats), the
   baseline store and noise-aware regression classifier (Rpb_obs.Baseline),
   and the report's derived views (Rpb_obs.Report).

   The estimators are checked against hand-computed answers, the resampling
   procedures against known distributions AND for seeded determinism, and
   the classifier against the property the CI perf-gate relies on: two runs
   of the same binary compare clean while a genuine slowdown is flagged. *)

module J = Rpb_benchmarks.Bench_json
module Stats = Rpb_obs.Stats
module Baseline = Rpb_obs.Baseline
module Report = Rpb_obs.Report

let check_float name expected actual =
  Alcotest.(check (float 1e-9)) name expected actual

(* ---------- Stats: point estimators, hand-computed ---------- *)

let test_median_known () =
  check_float "odd length" 3.0 (Stats.median [| 5.0; 1.0; 3.0; 2.0; 4.0 |]);
  check_float "even length midpoint" 2.5 (Stats.median [| 4.0; 1.0; 3.0; 2.0 |]);
  check_float "singleton" 7.0 (Stats.median [| 7.0 |]);
  check_float "mean" 3.0 (Stats.mean [| 1.0; 2.0; 3.0; 4.0; 5.0 |]);
  check_float "minimum" 1.0 (Stats.minimum [| 3.0; 1.0; 2.0 |]);
  check_float "maximum" 3.0 (Stats.maximum [| 3.0; 1.0; 2.0 |]);
  (* input must not be mutated by the sorting estimators *)
  let a = [| 5.0; 1.0; 3.0 |] in
  ignore (Stats.median a);
  Alcotest.(check (array (float 0.0))) "median leaves input untouched"
    [| 5.0; 1.0; 3.0 |] a

let test_mad_known () =
  (* deviations from median 3: [2;1;0;1;2], median deviation 1 *)
  check_float "mad" 1.0 (Stats.mad [| 1.0; 2.0; 3.0; 4.0; 5.0 |]);
  check_float "mad_sigma scales by 1.4826" Stats.mad_sigma_scale
    (Stats.mad_sigma [| 1.0; 2.0; 3.0; 4.0; 5.0 |]);
  check_float "constant data has zero spread" 0.0
    (Stats.mad [| 4.0; 4.0; 4.0 |])

let test_nearest_rank_known () =
  (* ceil(pct * count / 100), clamped to [1, count] — the one definition
     Latency, Metrics buckets and percentile_sorted now share. *)
  List.iter
    (fun (count, pct, expected) ->
      Alcotest.(check int)
        (Printf.sprintf "rank(count=%d, p%g)" count pct)
        expected
        (Stats.nearest_rank ~count ~pct))
    [
      (1, 0., 1); (1, 50., 1); (1, 100., 1);
      (100, 50., 50); (100, 95., 95); (100, 99., 99); (100, 100., 100);
      (100, 0.5, 1); (100, 99.01, 100);
      (4, 25., 1); (4, 26., 2); (4, 50., 2); (4, 75., 3); (4, 76., 4);
      (* out-of-range percentiles clamp instead of indexing out of bounds *)
      (100, -5., 1); (100, 250., 100);
    ];
  (match Stats.nearest_rank ~count:0 ~pct:50. with
  | exception Invalid_argument _ -> ()
  | r -> Alcotest.failf "count=0 should raise, got %d" r);
  let s = [| 10.0; 20.0; 30.0; 40.0 |] in
  check_float "percentile_sorted p50" 20.0 (Stats.percentile_sorted s 50.);
  check_float "percentile_sorted p51" 30.0 (Stats.percentile_sorted s 51.);
  check_float "percentile_sorted p0 = min" 10.0 (Stats.percentile_sorted s 0.);
  check_float "percentile_sorted p100 = max" 40.0
    (Stats.percentile_sorted s 100.)

let test_quantile_known () =
  let s = [| 10.0; 20.0; 30.0; 40.0 |] in
  check_float "q0 = min" 10.0 (Stats.quantile_sorted s 0.0);
  check_float "q1 = max" 40.0 (Stats.quantile_sorted s 1.0);
  (* type-7: h = (n-1)q = 1.5 -> 20 + 0.5*(30-20) *)
  check_float "median interpolates" 25.0 (Stats.quantile_sorted s 0.5);
  check_float "q0.25" 17.5 (Stats.quantile_sorted s 0.25)

(* ---------- Stats: bootstrap CI ---------- *)

let test_bootstrap_ci () =
  let rng = Rpb_prim.Rng.create 7 in
  let a =
    Array.init 50 (fun _ -> 100.0 +. Rpb_prim.Rng.float rng 10.0)
  in
  let lo, hi = Stats.bootstrap_ci ~seed:11 a in
  let m = Stats.median a in
  Alcotest.(check bool) "CI brackets the sample median" true
    (lo <= m && m <= hi);
  Alcotest.(check bool) "CI sits inside the data range" true
    (lo >= 100.0 && hi <= 110.0);
  let lo', hi' = Stats.bootstrap_ci ~seed:11 a in
  check_float "same seed, same lower bound" lo lo';
  check_float "same seed, same upper bound" hi hi';
  let lo2, hi2 = Stats.bootstrap_ci ~seed:12 a in
  Alcotest.(check bool) "different seed resamples differently" true
    (lo2 <> lo || hi2 <> hi);
  (* a degenerate sample has a degenerate interval *)
  let lo3, hi3 = Stats.bootstrap_ci ~seed:1 [| 5.0; 5.0; 5.0; 5.0 |] in
  check_float "degenerate lo" 5.0 lo3;
  check_float "degenerate hi" 5.0 hi3

(* ---------- Stats: permutation test ---------- *)

let test_permutation_known () =
  (* identical samples: every permuted statistic ties the observed 0, so the
     add-one p-value is exactly 1 *)
  let a = [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  check_float "identical samples, p = 1" 1.0
    (Stats.permutation_test ~seed:3 a (Array.copy a));
  (* fully separated samples: the observed mean shift is strictly maximal
     over all labellings (up to the mirror image), so only the two extreme
     splits count as hits *)
  let b = Array.map (fun x -> x +. 100.0) a in
  Alcotest.(check bool) "separated samples are significant" true
    (Stats.permutation_test ~seed:3 ~rounds:2000 a b < 0.05);
  (* two draws from one distribution: not significant *)
  let rng = Rpb_prim.Rng.create 21 in
  let x = Array.init 12 (fun _ -> Rpb_prim.Rng.float rng 1.0) in
  let y = Array.init 12 (fun _ -> Rpb_prim.Rng.float rng 1.0) in
  Alcotest.(check bool) "same-distribution draws stay insignificant" true
    (Stats.permutation_test ~seed:3 x y > 0.05)

let test_permutation_deterministic () =
  let rng = Rpb_prim.Rng.create 5 in
  let a = Array.init 10 (fun _ -> Rpb_prim.Rng.float rng 1.0) in
  let b = Array.init 10 (fun _ -> 0.3 +. Rpb_prim.Rng.float rng 1.0) in
  let p1 = Stats.permutation_test ~seed:9 a b in
  let p2 = Stats.permutation_test ~seed:9 a b in
  check_float "same seed, same p" p1 p2;
  (* add-one correction keeps p strictly positive *)
  Alcotest.(check bool) "p never reaches 0" true (p1 > 0.0)

let test_mann_whitney () =
  let u, p = Stats.mann_whitney [| 1.0; 2.0; 3.0 |] [| 4.0; 5.0; 6.0 |] in
  check_float "disjoint samples, U = 0" 0.0 u;
  Alcotest.(check bool) "disjoint samples lean significant" true (p < 0.2);
  let _, p_tied = Stats.mann_whitney [| 2.0; 2.0 |] [| 2.0; 2.0 |] in
  check_float "all-tied samples, p = 1" 1.0 p_tied;
  (* symmetry: the two-sided U = min(U_a, n1*n2 - U_a) is invariant under
     swapping the samples *)
  let u', p' = Stats.mann_whitney [| 4.0; 5.0; 6.0 |] [| 1.0; 2.0; 3.0 |] in
  check_float "swapped samples, same two-sided U" 0.0 u';
  check_float "same p both directions" p p'

let test_normal_sf () =
  check_float "sf(0) = 1/2" 0.5 (Stats.normal_sf 0.0);
  Alcotest.(check (float 2e-3)) "sf(1.96) ~ 0.025" 0.025
    (Stats.normal_sf 1.96);
  Alcotest.(check (float 1e-6)) "sf(-z) + sf(z) = 1" 1.0
    (Stats.normal_sf (-1.3) +. Stats.normal_sf 1.3)

(* ---------- Baseline: classification ---------- *)

let mk ?(bench = "sort") ?(input = "exponential") ?(mode = "unsafe")
    ?(threads = 4) ?(scale = 0) ?(smoke = false) ?(policy = "default")
    ?(samples = [||]) ?(mean = 1e6) () =
  {
    J.bench;
    input;
    mode;
    scale;
    threads;
    repeats = max 1 (Array.length samples);
    mean_ns = mean;
    min_ns = mean;
    samples_ns = samples;
    smoke;
    policy;
    verified = true;
    workers = [];
  }

(* tight per-repeat samples around 1ms *)
let tight = [| 1.00e6; 1.01e6; 0.99e6; 1.02e6; 0.98e6 |]

let test_estimate_ns () =
  check_float "median of samples wins over the stored mean" 1.00e6
    (Baseline.estimate_ns (mk ~samples:tight ~mean:9.9e9 ()));
  check_float "pre-v3 records fall back to the mean" 4.2e6
    (Baseline.estimate_ns (mk ~mean:4.2e6 ()))

let test_compare_same_binary_clean () =
  (* the perf-gate property: re-measuring the same binary (same
     distribution, slightly different draws) must not flag anything *)
  let old_r = mk ~samples:tight () in
  let new_r =
    mk ~samples:[| 1.01e6; 0.99e6; 1.00e6; 0.98e6; 1.03e6 |] ()
  in
  let r =
    Baseline.compare_records ~baseline:[ old_r ] ~current:[ new_r ] ()
  in
  Alcotest.(check int) "one shared configuration" 1
    (List.length r.Baseline.comparisons);
  let c = List.hd r.Baseline.comparisons in
  Alcotest.(check string) "verdict unchanged" "unchanged"
    (Baseline.verdict_name c.Baseline.verdict);
  Alcotest.(check bool) "gate passes" true (Baseline.ok r)

let test_compare_flags_slowdown () =
  let old_r = mk ~samples:tight () in
  let new_r = mk ~samples:(Array.map (fun s -> s *. 2.0) tight) () in
  let r =
    Baseline.compare_records ~baseline:[ old_r ] ~current:[ new_r ] ()
  in
  let c = List.hd r.Baseline.comparisons in
  Alcotest.(check string) "2x slowdown regresses" "regressed"
    (Baseline.verdict_name c.Baseline.verdict);
  Alcotest.(check bool) "delta ~ +100%" true
    (c.Baseline.delta > 0.9 && c.Baseline.delta < 1.1);
  Alcotest.(check bool) "permutation test ran and agreed" true
    (match c.Baseline.p_value with Some p -> p < 0.05 | None -> false);
  Alcotest.(check bool) "gate fails" false (Baseline.ok r);
  Alcotest.(check int) "listed as a regression" 1
    (List.length (Baseline.regressions r))

let test_compare_flags_improvement () =
  let old_r = mk ~samples:tight () in
  let new_r = mk ~samples:(Array.map (fun s -> s *. 0.5) tight) () in
  let r =
    Baseline.compare_records ~baseline:[ old_r ] ~current:[ new_r ] ()
  in
  let c = List.hd r.Baseline.comparisons in
  Alcotest.(check string) "2x speedup improves" "improved"
    (Baseline.verdict_name c.Baseline.verdict);
  Alcotest.(check bool) "improvements never fail the gate" true
    (Baseline.ok r)

let test_compare_noise_widens_band () =
  (* a 15% median shift on wildly dispersed samples must NOT be flagged:
     the MAD-widened band swallows it *)
  let noisy = [| 0.5e6; 1.5e6; 1.0e6; 2.0e6; 0.8e6 |] in
  let old_r = mk ~samples:noisy () in
  let new_r = mk ~samples:(Array.map (fun s -> s *. 1.15) noisy) () in
  let r =
    Baseline.compare_records ~baseline:[ old_r ] ~current:[ new_r ] ()
  in
  let c = List.hd r.Baseline.comparisons in
  Alcotest.(check bool) "delta clears the flat threshold" true
    (c.Baseline.delta > 0.10);
  Alcotest.(check bool) "band widened past the delta" true
    (c.Baseline.band > c.Baseline.delta);
  Alcotest.(check string) "still unchanged" "unchanged"
    (Baseline.verdict_name c.Baseline.verdict)

let test_compare_pre_v3_band_only () =
  (* sample-less records: the band alone decides, p_value is None *)
  let old_r = mk ~mean:1.0e6 () in
  let new_r = mk ~mean:2.5e6 () in
  let r =
    Baseline.compare_records ~baseline:[ old_r ] ~current:[ new_r ] ()
  in
  let c = List.hd r.Baseline.comparisons in
  Alcotest.(check bool) "no permutation test without samples" true
    (c.Baseline.p_value = None);
  Alcotest.(check string) "band alone flags 2.5x" "regressed"
    (Baseline.verdict_name c.Baseline.verdict)

let test_compare_smoke_and_coverage () =
  let old_rs =
    [ mk ~samples:tight (); mk ~bench:"bw" ~samples:tight () ]
  in
  let new_rs =
    [
      mk ~samples:tight ();
      mk ~bench:"hist" ~samples:tight ();
      mk ~bench:"lrs" ~smoke:true ~samples:tight ();
    ]
  in
  let r = Baseline.compare_records ~baseline:old_rs ~current:new_rs () in
  Alcotest.(check int) "only the shared key is compared" 1
    (List.length r.Baseline.comparisons);
  Alcotest.(check int) "smoke records are excluded" 1 r.Baseline.smoke_skipped;
  Alcotest.(check (list string)) "disappeared configurations are reported"
    [ "bw" ]
    (List.map (fun k -> k.Baseline.bench) r.Baseline.only_baseline);
  Alcotest.(check (list string)) "new configurations are reported"
    [ "hist" ]
    (List.map (fun k -> k.Baseline.bench) r.Baseline.only_current)

let test_compare_deterministic () =
  let rng = Rpb_prim.Rng.create 33 in
  let old_r =
    mk ~samples:(Array.init 7 (fun _ -> 1e6 +. Rpb_prim.Rng.float rng 2e5)) ()
  in
  let new_r =
    mk ~samples:(Array.init 7 (fun _ -> 1.2e6 +. Rpb_prim.Rng.float rng 2e5)) ()
  in
  let run () =
    let r =
      Baseline.compare_records ~seed:4 ~baseline:[ old_r ]
        ~current:[ new_r ] ()
    in
    (List.hd r.Baseline.comparisons).Baseline.p_value
  in
  Alcotest.(check bool) "seeded comparison is reproducible" true
    (run () = run ())

(* ---------- Baseline: the store ---------- *)

let with_temp_dir f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "rpb_baseline_%d" (Unix.getpid ()))
  in
  let rec rm path =
    if Sys.is_directory path then begin
      Array.iter (fun n -> rm (Filename.concat path n)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path
  in
  if Sys.file_exists dir then rm dir;
  Fun.protect ~finally:(fun () -> if Sys.file_exists dir then rm dir)
    (fun () -> f dir)

let test_store_round_trip () =
  with_temp_dir (fun dir ->
      let r1 = mk ~samples:tight () in
      let r2 = mk ~bench:"bw" ~mode:"checked" ~samples:tight () in
      let smoke = mk ~bench:"bw" ~smoke:true () in
      let paths = Baseline.save ~dir [ r1; r2; smoke ] in
      Alcotest.(check int) "one file per benchmark" 2 (List.length paths);
      let loaded = Baseline.load dir in
      Alcotest.(check int) "smoke records never enter the store" 2
        (List.length loaded);
      let keys = List.map Baseline.key_of_record loaded in
      Alcotest.(check bool) "both keys round-trip" true
        (List.mem (Baseline.key_of_record r1) keys
         && List.mem (Baseline.key_of_record r2) keys);
      (* merging an updated record replaces, never duplicates *)
      let r1' = mk ~samples:(Array.map (fun s -> s *. 3.0) tight) () in
      ignore (Baseline.save ~dir [ r1' ]);
      let merged = Baseline.load dir in
      Alcotest.(check int) "still one record per key" 2 (List.length merged);
      let updated =
        List.find
          (fun r -> Baseline.key_of_record r = Baseline.key_of_record r1)
          merged
      in
      check_float "the record was replaced" 3.0e6
        (Baseline.estimate_ns updated))

let test_compare_json_round_trip () =
  let r =
    Baseline.compare_records ~baseline:[ mk ~samples:tight () ]
      ~current:[ mk ~samples:(Array.map (fun s -> s *. 2.0) tight) () ]
      ()
  in
  let j = Baseline.to_json r in
  Alcotest.(check string) "kind tags the document" "compare"
    (J.get_str (J.member "kind" j));
  Alcotest.(check bool) "ok mirrors the gate" false
    (J.get_bool (J.member "ok" j));
  (* and the document survives a print/parse cycle *)
  let j' = J.of_string (J.to_string j) in
  Alcotest.(check int) "comparisons survive the round-trip" 1
    (List.length (J.get_list (J.member "comparisons" j')))

(* A non-default policy opens its own baseline key, while default-policy
   records keep matching pre-policy baselines (whose records read back with
   policy = "default"). *)
let test_compare_policy_opens_new_key () =
  let baseline = [ mk ~samples:tight () ] in
  let r =
    Baseline.compare_records ~baseline
      ~current:[ mk ~policy:"steal_half" ~samples:tight () ]
      ()
  in
  Alcotest.(check int) "no shared key across policies" 0
    (List.length r.Baseline.comparisons);
  Alcotest.(check int) "baseline-only key" 1
    (List.length r.Baseline.only_baseline);
  Alcotest.(check int) "current-only key" 1
    (List.length r.Baseline.only_current);
  let r2 =
    Baseline.compare_records ~baseline ~current:[ mk ~samples:tight () ] ()
  in
  Alcotest.(check int) "default-policy run matches the pre-policy key" 1
    (List.length r2.Baseline.comparisons)

(* ---------- Report: derived views ---------- *)

let test_report_speedup_curves () =
  let records =
    [
      mk ~mode:"seq" ~threads:1 ~samples:[| 10e6; 10e6; 10e6 |] ();
      mk ~threads:1 ~samples:[| 10e6; 10e6; 10e6 |] ();
      mk ~threads:2 ~samples:[| 5e6; 5e6; 5e6 |] ();
      mk ~threads:4 ~samples:[| 2.5e6; 2.5e6; 2.5e6 |] ();
      (* a smoke record at another thread count must not join the curve *)
      mk ~threads:8 ~smoke:true ~samples:[| 1e6 |] ();
    ]
  in
  match Report.speedup_curves records with
  | [ c ] ->
    Alcotest.(check string) "baseline is the sequential run" "seq"
      c.Report.base_label;
    Alcotest.(check (list int)) "thread axis" [ 1; 2; 4 ]
      (List.map (fun (t, _, _) -> t) c.Report.points);
    List.iter2
      (fun expected (_, _, sp) -> check_float "speedup" expected sp)
      [ 1.0; 2.0; 4.0 ] c.Report.points
  | cs ->
    Alcotest.failf "expected exactly one curve, got %d" (List.length cs)

let test_report_overheads () =
  let records =
    [
      mk ~samples:[| 10e6; 10e6; 10e6 |] ();
      mk ~mode:"checked" ~samples:[| 12e6; 12e6; 12e6 |] ();
      mk ~mode:"sync" ~samples:[| 40e6; 40e6; 40e6 |] ();
      (* different thread count: no pairing *)
      mk ~mode:"checked" ~threads:2 ~samples:[| 1e6 |] ();
    ]
  in
  let os = Report.overheads records in
  Alcotest.(check int) "checked and sync pair with unsafe" 2
    (List.length os);
  List.iter
    (fun o ->
      match o.Report.o_vs with
      | "checked" -> check_float "checked ratio" 1.2 o.Report.o_ratio
      | "sync" -> check_float "sync ratio" 4.0 o.Report.o_ratio
      | other -> Alcotest.failf "unexpected pairing %s" other)
    os

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1))
  in
  go 0

let test_report_render () =
  let a =
    {
      Report.empty with
      Report.bench =
        [
          mk ~mode:"seq" ~threads:1 ~samples:[| 10e6 |] ();
          mk ~threads:1 ~samples:[| 10e6 |] ();
          mk ~threads:4 ~samples:[| 2.5e6 |] ();
          mk ~mode:"checked" ~threads:4 ~samples:[| 3e6 |] ();
        ];
    }
  in
  let html = Report.to_html a in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("html contains " ^ needle) true
        (contains html needle))
    [ "<svg"; "Speedup curves"; "Fear-spectrum overhead"; "</html>" ];
  let md = Report.to_markdown a in
  Alcotest.(check bool) "markdown carries the overhead ratio" true
    (contains md "1.20x")

let test_report_policy_races () =
  let records =
    [
      mk ~bench:"sort" ~samples:[| 10e6; 10e6; 10e6 |] ();
      mk ~bench:"sort" ~policy:"steal_half" ~samples:[| 8e6; 8e6; 8e6 |] ();
      mk ~bench:"sort" ~policy:"work_first" ~samples:[| 12e6 |] ();
      (* measured under one policy only: nothing to race *)
      mk ~bench:"hist" ~samples:[| 1e6 |] ();
      (* smoke records never enter the race *)
      mk ~bench:"bw" ~smoke:true ~samples:[| 1e6 |] ();
      mk ~bench:"bw" ~policy:"sticky" ~smoke:true ~samples:[| 2e6 |] ();
    ]
  in
  (match Report.policy_races records with
   | [ r ] ->
     Alcotest.(check string) "bench" "sort" r.Report.pr_bench;
     (* sort's worst access pattern is RngInd: comfortable, the mildest
        tier any registry benchmark reaches (everything else carries AW). *)
     Alcotest.(check string) "fear tier from the registry" "C"
       r.Report.pr_tier;
     Alcotest.(check string) "winner is the fastest policy" "steal_half"
       r.Report.pr_winner;
     Alcotest.(check (list string)) "policies sorted by name"
       [ "default"; "steal_half"; "work_first" ]
       (List.map fst r.Report.pr_times)
   | rs -> Alcotest.failf "expected one race, got %d" (List.length rs));
  let a = { Report.empty with Report.bench = records } in
  Alcotest.(check bool) "html renders the race section" true
    (contains (Report.to_html a) "Policy race");
  Alcotest.(check bool) "markdown renders the race table" true
    (contains (Report.to_markdown a) "Policy race");
  (* and a single-policy artifact set renders no race section at all *)
  let b =
    { Report.empty with Report.bench = [ mk ~samples:[| 1e6 |] () ] }
  in
  Alcotest.(check bool) "no race section without a second policy" false
    (contains (Report.to_html b) "Policy race")

let test_report_classify_and_errors () =
  Alcotest.(check string) "plain documents classify as bench" "bench"
    (Report.classify_doc (J.Obj [ ("results", J.List []) ]));
  Alcotest.(check string) "kind wins" "fault"
    (Report.classify_doc (J.Obj [ ("kind", J.Str "fault") ]));
  let a = Report.load_files [ "/nonexistent/artifact.json" ] in
  Alcotest.(check int) "unreadable files land in errors" 1
    (List.length a.Report.errors);
  Alcotest.(check int) "and produce no source" 0 (List.length a.Report.sources)

(* ---------- Report: the JSONL fallback parser ---------- *)

let with_temp_file content f =
  let path = Filename.temp_file "rpb_report_jsonl" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc content;
      close_out oc;
      f path)

let metrics_line seq =
  Printf.sprintf
    "{\"kind\":\"metrics\",\"seq\":%d,\"ts_s\":%d.0,\"counters\":{},\"gauges\":{},\"histograms\":{}}"
    seq seq

let test_report_jsonl_fallback () =
  (* A server killed mid-write leaves a truncated final line: every whole
     line must still load, the torn one is skipped, and the file counts as
     a jsonl source rather than an error. *)
  with_temp_file
    (metrics_line 1 ^ "\n" ^ metrics_line 2 ^ "\n"
   ^ "{\"kind\":\"metrics\",\"seq\":3,\"ts_")
    (fun path ->
      let a = Report.load_files [ path ] in
      Alcotest.(check int) "whole lines load" 2 (List.length a.Report.metrics);
      Alcotest.(check int) "no error for the torn tail" 0
        (List.length a.Report.errors);
      (match a.Report.sources with
      | [ s ] -> Alcotest.(check string) "jsonl source" "jsonl" s.Report.kind
      | _ -> Alcotest.fail "one source expected"));
  (* --metrics-json streams interleave slow-request profiles and slo docs
     with the snapshots; each line classifies on its own. *)
  with_temp_file
    (metrics_line 1 ^ "\n"
   ^ "{\"kind\":\"slo\",\"spec\":\"avail:0.99\"}\n" ^ "not json at all\n"
   ^ metrics_line 2 ^ "\n")
    (fun path ->
      let a = Report.load_files [ path ] in
      Alcotest.(check int) "snapshots classified" 2
        (List.length a.Report.metrics);
      Alcotest.(check int) "slo line classified" 1 (List.length a.Report.slos);
      Alcotest.(check int) "junk line skipped without error" 0
        (List.length a.Report.errors));
  (* an empty file parses as nothing: an error entry, never a crash *)
  with_temp_file "" (fun path ->
      let a = Report.load_files [ path ] in
      Alcotest.(check int) "no documents" 0 (List.length a.Report.metrics);
      Alcotest.(check int) "empty file lands in errors" 1
        (List.length a.Report.errors);
      Alcotest.(check int) "and produces no source" 0
        (List.length a.Report.sources))

let test_report_slo_docs () =
  let doc =
    J.Obj
      [
        ("kind", J.Str "slo");
        ("spec", J.Str "avail:0.99");
        ("snapshots", J.Int 3);
        ("skipped", J.Int 1);
        ("worst", J.Str "page");
        ("violation", J.Bool true);
        ( "objectives",
          J.List
            [
              J.Obj
                [
                  ("name", J.Str "availability");
                  ("budget", J.Float 0.01);
                  ( "final",
                    J.Obj
                      [
                        ("name", J.Str "availability");
                        ("level", J.Str "page");
                        ("fast_burn", J.Float 20.0);
                        ("slow_burn", J.Float 16.0);
                        ("budget_remaining", J.Float (-0.5));
                      ] );
                ];
            ] );
        ( "series",
          J.List
            [
              J.Obj
                [
                  ("ts_s", J.Float 1.0);
                  ("levels", J.List [ J.Int 2 ]);
                  ("fast", J.List [ J.Float 20.0 ]);
                  ("slow", J.List [ J.Float 16.0 ]);
                ];
            ] );
      ]
  in
  Alcotest.(check string) "slo documents classify as slo" "slo"
    (Report.classify_doc doc);
  let a = { Report.empty with Report.slos = [ doc ] } in
  let html = Report.to_html a in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("html contains " ^ needle) true
        (contains html needle))
    [ "SLO &amp; error budget"; "availability"; "violated"; "avail:0.99" ];
  let md = Report.to_markdown a in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("markdown contains " ^ needle) true
        (contains md needle))
    [ "SLO & error budget"; "availability"; "page" ];
  Alcotest.(check bool) "no section without slo docs" false
    (contains (Report.to_html Report.empty) "SLO &amp; error budget")

let test_report_serve_docs () =
  Alcotest.(check string) "serve documents classify as serve" "serve"
    (Report.classify_doc (J.Obj [ ("kind", J.Str "serve") ]));
  let doc role latency_field p95 =
    J.Obj
      [
        ("kind", J.Str "serve");
        ("role", J.Str role);
        ( "counters",
          J.Obj
            [ ("ok", J.Int 9); ("shed", J.Int 3); ("shed_replies", J.Int 3);
              ("stalled", J.Int 1); ("cancelled", J.Int 0);
              ("failed", J.Int 0); ("lost", J.Int 0) ] );
        ( latency_field,
          J.Obj
            [ ("count", J.Int 9); ("mean_ms", J.Float 4.0);
              ("p50_ms", J.Float 3.0); ("p95_ms", J.Float p95);
              ("p99_ms", J.Float (p95 +. 1.0)); ("max_ms", J.Float 20.0) ] );
      ]
  in
  let a =
    {
      Report.empty with
      Report.serves =
        [ doc "server" "exec_latency" 17.25; doc "loadgen" "latency" 12.5 ];
    }
  in
  let html = Report.to_html a in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("html contains " ^ needle) true
        (contains html needle))
    [ "Serving latency"; "server"; "loadgen"; "17.25"; "12.50" ];
  let md = Report.to_markdown a in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("markdown contains " ^ needle) true
        (contains md needle))
    [ "Serving latency"; "17.25"; "12.50" ];
  (* no serve artifacts: no section *)
  Alcotest.(check bool) "no section without serve docs" false
    (contains (Report.to_html Report.empty) "Serving latency")

let () =
  Alcotest.run "stats"
    [
      ( "estimators",
        [
          Alcotest.test_case "median/mean/min/max" `Quick test_median_known;
          Alcotest.test_case "mad and mad-sigma" `Quick test_mad_known;
          Alcotest.test_case "type-7 quantiles" `Quick test_quantile_known;
          Alcotest.test_case "nearest rank" `Quick test_nearest_rank_known;
          Alcotest.test_case "normal survival function" `Quick test_normal_sf;
        ] );
      ( "resampling",
        [
          Alcotest.test_case "bootstrap CI" `Quick test_bootstrap_ci;
          Alcotest.test_case "permutation test known answers" `Quick
            test_permutation_known;
          Alcotest.test_case "permutation test determinism" `Quick
            test_permutation_deterministic;
          Alcotest.test_case "Mann-Whitney" `Quick test_mann_whitney;
        ] );
      ( "baseline-compare",
        [
          Alcotest.test_case "robust estimate" `Quick test_estimate_ns;
          Alcotest.test_case "same binary compares clean" `Quick
            test_compare_same_binary_clean;
          Alcotest.test_case "2x slowdown is flagged" `Quick
            test_compare_flags_slowdown;
          Alcotest.test_case "2x speedup improves" `Quick
            test_compare_flags_improvement;
          Alcotest.test_case "noise widens the band" `Quick
            test_compare_noise_widens_band;
          Alcotest.test_case "pre-v3 records: band only" `Quick
            test_compare_pre_v3_band_only;
          Alcotest.test_case "smoke exclusion and coverage lists" `Quick
            test_compare_smoke_and_coverage;
          Alcotest.test_case "seeded determinism" `Quick
            test_compare_deterministic;
          Alcotest.test_case "policy opens a new key" `Quick
            test_compare_policy_opens_new_key;
        ] );
      ( "baseline-store",
        [
          Alcotest.test_case "save/load/merge round-trip" `Quick
            test_store_round_trip;
          Alcotest.test_case "compare document round-trip" `Quick
            test_compare_json_round_trip;
        ] );
      ( "report",
        [
          Alcotest.test_case "speedup curves" `Quick
            test_report_speedup_curves;
          Alcotest.test_case "fear-spectrum overheads" `Quick
            test_report_overheads;
          Alcotest.test_case "html and markdown render" `Quick
            test_report_render;
          Alcotest.test_case "policy race winner table" `Quick
            test_report_policy_races;
          Alcotest.test_case "classification and error capture" `Quick
            test_report_classify_and_errors;
          Alcotest.test_case "serve latency section" `Quick
            test_report_serve_docs;
          Alcotest.test_case "jsonl fallback parsing" `Quick
            test_report_jsonl_fallback;
          Alcotest.test_case "slo section" `Quick test_report_slo_docs;
        ] );
    ]
