(* Stress and failure-injection tests: exception storms, oversubscription,
   pathological workloads, and cross-cutting integration scenarios. *)

open Rpb_pool

let with_pool n f =
  let pool = Pool.create ~num_workers:n () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () -> f pool)

(* ---------- Pool failure injection ---------- *)

exception Injected of int

let test_pool_exception_in_parallel_for () =
  with_pool 4 (fun pool ->
      let raised = ref false in
      (try
         Pool.run pool (fun () ->
             Pool.parallel_for ~grain:8 ~start:0 ~finish:10_000
               ~body:(fun i -> if i = 7_777 then raise (Injected i))
               pool)
       with Injected 7777 -> raised := true);
      Alcotest.(check bool) "exception surfaced" true !raised;
      (* The pool must remain usable after the failure. *)
      let x = Pool.run pool (fun () -> Pool.parallel_for_reduce ~start:0 ~finish:100 ~body:Fun.id ~combine:( + ) ~init:0 pool) in
      Alcotest.(check int) "pool alive after exception" 4950 x)

let test_pool_many_failing_tasks () =
  with_pool 4 (fun pool ->
      Pool.run pool (fun () ->
          let ps = List.init 100 (fun i -> Pool.async pool (fun () -> raise (Injected i))) in
          let failures =
            List.fold_left
              (fun acc p ->
                match Pool.await pool p with
                | _ -> acc
                | exception Injected _ -> acc + 1)
              0 ps
          in
          Alcotest.(check int) "every failure delivered" 100 failures))

let test_pool_deep_nesting () =
  with_pool 3 (fun pool ->
      let rec nest depth =
        if depth = 0 then 1
        else begin
          let a, b = Pool.join pool (fun () -> nest (depth - 1)) (fun () -> nest (depth - 1)) in
          a + b
        end
      in
      let x = Pool.run pool (fun () -> nest 12) in
      Alcotest.(check int) "2^12 leaves" 4096 x)

let test_pool_unbalanced_bodies () =
  (* Wildly skewed task costs exercise stealing. *)
  with_pool 4 (fun pool ->
      let n = 512 in
      let total =
        Pool.run pool (fun () ->
            Pool.parallel_for_reduce ~grain:1 ~start:0 ~finish:n
              ~body:(fun i ->
                let work = if i = 0 then 200_000 else 50 in
                let acc = ref 0 in
                for j = 1 to work do
                  acc := !acc + (Rpb_prim.Rng.hash64 j land 1)
                done;
                !acc land 1)
              ~combine:( + ) ~init:0 pool)
      in
      Alcotest.(check bool) "completes despite skew" true (total >= 0))

let test_two_pools_coexist () =
  with_pool 2 (fun p1 ->
      with_pool 2 (fun p2 ->
          let a = Pool.run p1 (fun () -> Pool.parallel_for_reduce ~start:0 ~finish:1000 ~body:Fun.id ~combine:( + ) ~init:0 p1) in
          let b = Pool.run p2 (fun () -> Pool.parallel_for_reduce ~start:0 ~finish:1000 ~body:Fun.id ~combine:( + ) ~init:0 p2) in
          Alcotest.(check int) "pool 1" 499500 a;
          Alcotest.(check int) "pool 2" 499500 b))

(* ---------- Scatter failure injection under parallelism ---------- *)

let test_checked_scatter_many_duplicates_parallel () =
  with_pool 4 (fun pool ->
      Pool.run pool (fun () ->
          let n = 50_000 in
          let rng = Rpb_prim.Rng.create 5 in
          let offsets = Rpb_prim.Rng.permutation rng n in
          (* Inject 100 random duplicates. *)
          for _ = 1 to 100 do
            offsets.(Rpb_prim.Rng.int rng n) <- Rpb_prim.Rng.int rng n
          done;
          let src = Array.make n 1 in
          let out = Array.make n 0 in
          match Rpb_core.Scatter.checked pool ~out ~offsets ~src with
          | () -> Alcotest.fail "duplicates must be detected"
          | exception Rpb_core.Scatter.Duplicate_offset _ -> ()))

let test_checked_scatter_single_duplicate_in_big_input () =
  with_pool 4 (fun pool ->
      Pool.run pool (fun () ->
          let n = 100_000 in
          let offsets = Rpb_prim.Rng.permutation (Rpb_prim.Rng.create 6) n in
          (* Exactly one duplicate, hidden deep. *)
          offsets.(n - 1) <- offsets.(0);
          let src = Array.make n 1 in
          let out = Array.make n 0 in
          match Rpb_core.Scatter.checked pool ~out ~offsets ~src with
          | () -> Alcotest.fail "needle-in-haystack duplicate missed"
          | exception Rpb_core.Scatter.Duplicate_offset o ->
            Alcotest.(check int) "reports the duplicated offset" offsets.(0) o))

(* ---------- MultiQueue stress ---------- *)

let test_mq_burst_stress () =
  let q = Rpb_mq.Multiqueue.create ~queues:16 () in
  let s = Rpb_mq.Multiqueue.Scheduler.create q in
  let executed = Atomic.make 0 in
  (* Bursty fan-out: every task at depth d spawns 3 at depth d-1. *)
  Rpb_mq.Multiqueue.Scheduler.push s ~pri:0 7;
  Rpb_mq.Multiqueue.Scheduler.run s ~num_workers:4 ~handler:(fun s ~pri:_ d ->
      Atomic.incr executed;
      if d > 0 then
        for _ = 1 to 3 do
          Rpb_mq.Multiqueue.Scheduler.push s ~pri:d (d - 1)
        done);
  (* sum_{i=0..7} 3^i = (3^8 - 1) / 2 = 3280 *)
  Alcotest.(check int) "geometric fan-out drained" 3280 (Atomic.get executed)

let test_mq_priority_respected_in_bulk () =
  (* With a single lane, pops are exactly ordered even under load. *)
  let q = Rpb_mq.Multiqueue.create ~queues:1 () in
  let rng = Rpb_prim.Rng.create 12 in
  let n = 20_000 in
  for _ = 1 to n do
    Rpb_mq.Multiqueue.push q ~pri:(Rpb_prim.Rng.int rng 1000) 0
  done;
  let prev = ref min_int in
  let sorted = ref true in
  for _ = 1 to n do
    match Rpb_mq.Multiqueue.pop q with
    | Some (p, _) ->
      if p < !prev then sorted := false;
      prev := p
    | None -> Alcotest.fail "premature empty"
  done;
  Alcotest.(check bool) "single-lane total order" true !sorted

(* ---------- Cross-library integration ---------- *)

let test_pipeline_of_benchmark_stages () =
  (* Text -> BWT -> decode as a 2-stage pipeline over many documents. *)
  with_pool 2 (fun pool ->
      Pool.run pool (fun () ->
          let docs =
            Array.init 12 (fun i -> Rpb_text.Text_gen.wiki ~size:500 ~seed:(40 + i))
          in
          let p =
            Rpb_extra.Pipeline.(
              stage (fun doc -> (doc, Rpb_text.Bwt.encode pool doc))
              >>> stage (fun (doc, enc) -> (doc, Rpb_text.Bwt.decode pool enc)))
          in
          let out = Rpb_extra.Pipeline.run p docs in
          Alcotest.(check bool) "all roundtrips exact" true
            (Array.for_all (fun (doc, dec) -> String.equal doc dec) out)))

let test_graph_pipeline_end_to_end () =
  (* Generate -> MIS -> verify across several graphs via futures. *)
  with_pool 3 (fun pool ->
      Pool.run pool (fun () ->
          let futures =
            List.init 3 (fun i ->
                Rpb_extra.Future.spawn pool (fun () ->
                    let g =
                      Rpb_graph.Generate.random_uniform pool ~n:300 ~m:900
                        ~seed:(60 + i) ()
                    in
                    let g = Rpb_graph.Csr.symmetrize pool g in
                    let mis = Rpb_graph.Mis.compute pool g in
                    Rpb_graph.Reference.is_maximal_independent_set g mis))
          in
          List.iter
            (fun f ->
              Alcotest.(check bool) "MIS valid" true (Rpb_extra.Future.get pool f))
            futures))

let test_full_text_stack () =
  (* One corpus through every text component. *)
  with_pool 3 (fun pool ->
      Pool.run pool (fun () ->
          let s = Rpb_text.Text_gen.wiki ~size:6_000 ~seed:70 in
          let sa = Rpb_text.Suffix_array.build pool s in
          Alcotest.(check bool) "sa valid" true (Rpb_text.Suffix_array.is_suffix_array s sa);
          let lcp = Rpb_text.Lcp.kasai pool s ~sa in
          let lrs = Rpb_text.Lcp.longest_repeated_substring pool s in
          Alcotest.(check bool) "lrs = max lcp" true
            (lrs.Rpb_text.Lcp.length = Array.fold_left max 0 lcp);
          let wc = Rpb_text.Word_count.count pool s in
          Alcotest.(check bool) "word count nonempty" true (Array.length wc > 0);
          Alcotest.(check string) "bwt roundtrip" s
            (Rpb_text.Bwt.decode_parallel pool (Rpb_text.Bwt.encode pool s))))

(* ---------- Shadow-array oracle under multi-domain stress ---------- *)

let test_shadow_no_false_positives_multi_domain () =
  (* Valid inputs hammered from 4 domains: the race detector must stay
     silent, and the write-through payload must be the correct scatter. *)
  with_pool 4 (fun pool ->
      Pool.run pool (fun () ->
          Rpb_check.Shadow.with_instrumentation true @@ fun () ->
          let rng = Rpb_prim.Rng.create 83 in
          for round = 1 to 8 do
            let n = 20_000 + Rpb_prim.Rng.int rng 20_000 in
            let offsets = Rpb_prim.Rng.permutation rng n in
            let src = Array.init n Fun.id in
            let out = Rpb_check.Shadow.create ~pool (Array.make n (-1)) in
            let mode = List.nth Rpb_core.Scatter.all_modes (round mod 4) in
            Rpb_check.Instrument.scatter mode pool ~out ~offsets ~src;
            Alcotest.(check int)
              (Printf.sprintf "round %d (%s): zero races" round
                 (Rpb_core.Scatter.mode_name mode))
              0
              (Rpb_check.Shadow.race_count out);
            (* Scattering the identity through a permutation yields its
               inverse — another permutation, so the sorted payload is the
               identity iff every slot was written exactly once. *)
            let payload = Array.copy (Rpb_check.Shadow.payload out) in
            Array.sort compare payload;
            Alcotest.(check bool) "payload is the full image" true
              (Rpb_prim.Util.array_for_all_i (fun i v -> i = v) payload)
          done))

let test_shadow_chunks_no_false_positives_multi_domain () =
  with_pool 4 (fun pool ->
      Pool.run pool (fun () ->
          Rpb_check.Shadow.with_instrumentation true @@ fun () ->
          let rng = Rpb_prim.Rng.create 89 in
          for _round = 1 to 8 do
            let n = 30_000 in
            let pieces = 1 + Rpb_prim.Rng.int rng 256 in
            let splits =
              Array.init (pieces + 1) (fun _ -> Rpb_prim.Rng.int rng (n + 1))
            in
            Array.sort compare splits;
            let out = Rpb_check.Shadow.create ~pool (Array.make n 0) in
            Rpb_check.Instrument.fill_chunks_ind pool ~out ~offsets:splits
              ~f:(fun i _ -> i);
            Alcotest.(check int) "zero races on sorted splits" 0
              (Rpb_check.Shadow.race_count out)
          done))

let test_oracle_sort_benchmark_multi_domain () =
  (* The full differential oracle on the sort benchmark: sequential,
     shuffled-deterministic and 4-domain work-stealing runs must all agree
     digest-for-digest, and the shadow self-check must hold. *)
  let report = Rpb_check.Oracle.run ~threads:4 ~scale:0 ~bench:"sort" ~seed:3 () in
  Alcotest.(check bool) "sort oracle ok" true (Rpb_check.Oracle.ok report)

(* ---------- Determinism under different worker counts ---------- *)

let test_deterministic_across_worker_counts () =
  let compute workers =
    with_pool workers (fun pool ->
        Pool.run pool (fun () ->
            let g =
              Rpb_graph.Csr.symmetrize pool
                (Rpb_graph.Generate.rmat pool ~scale:8 ~edge_factor:4 ())
            in
            let mis = Rpb_graph.Mis.compute pool g in
            let msf =
              Rpb_graph.Spanning_forest.minimum_spanning_forest pool
                (Rpb_graph.Generate.road_grid pool ~rows:12 ~cols:12 ~weighted:true ())
            in
            let sa = Rpb_text.Suffix_array.build pool "deterministic determinism" in
            (mis, msf, sa)))
  in
  let r1 = compute 1 and r2 = compute 2 and r4 = compute 4 in
  Alcotest.(check bool) "1 = 2 workers" true (r1 = r2);
  Alcotest.(check bool) "2 = 4 workers" true (r2 = r4)

(* ---------- Splitter stress: thieves vs the may-inline fast path ---------- *)

(* Three idle workers hammer the one worker chomping a grain-1 range inline:
   under both splitters every index must run exactly once (no lost or
   duplicated ranges however the fast path and the thieves interleave), and
   the [Stats] task counter must reconcile with the leaves run.  Eager
   splitting has a closed form — a binary split tree over n grain-1 leaves
   spawns exactly [n - 1] tasks (each [join] pushes one branch, the root
   leaf chain runs inline).  Lazy splitting spawns only what demand pulled:
   at least the root split (the deque is empty when the loop starts, i.e.
   drained), and never more than eager's [leaves - 1]. *)
let test_splitter_thief_storm () =
  let n = 20_000 in
  List.iter
    (fun (policy : Pool.Policy.t) ->
      let pool = Pool.create ~policy ~num_workers:4 () in
      Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
      for round = 1 to 3 do
        let hits = Rpb_prim.Atomic_array.make n 0 in
        let before = Pool.Stats.tasks_executed (Pool.Stats.capture pool) in
        Pool.run pool (fun () ->
            Pool.parallel_for ~grain:1 ~start:0 ~finish:n
              ~body:(fun i ->
                ignore (Rpb_prim.Atomic_array.fetch_and_add hits i 1))
              pool);
        let delta =
          Pool.Stats.tasks_executed (Pool.Stats.capture pool) - before
        in
        Array.iteri
          (fun i c ->
            if c <> 1 then
              Alcotest.failf "%s round %d: index %d ran %d times"
                policy.Pool.Policy.name round i c)
          (Rpb_prim.Atomic_array.to_array hits);
        match policy.Pool.Policy.splitter with
        | Pool.Policy.Eager_grain ->
          Alcotest.(check int)
            (Printf.sprintf "%s round %d: tasks executed = leaves - 1"
               policy.Pool.Policy.name round)
            (n - 1) delta
        | Pool.Policy.Lazy_binary _ ->
          if delta < 1 || delta > n - 1 then
            Alcotest.failf
              "%s round %d: %d tasks executed for %d grain-1 leaves \
               (expected within [1, %d])"
              policy.Pool.Policy.name round delta n (n - 1)
      done)
    [ Pool.Policy.default; Pool.Policy.lazy_split ]

(* Interleaved constructs: eight concurrent async subtrees, each a grain-1
   lazy [parallel_for] over its own slice, so fast-path chomping, half-range
   publications and thief traffic from *other* constructs all overlap on the
   same four deques.  Exactly-once coverage of the whole array is the
   no-lost-ranges invariant across construct boundaries. *)
let test_lazy_fast_path_under_concurrent_constructs () =
  let pool = Pool.create ~policy:Pool.Policy.lazy_grain1 ~num_workers:4 () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
  let slices = 8 and slice = 4_096 in
  let hits = Rpb_prim.Atomic_array.make (slices * slice) 0 in
  Pool.run pool (fun () ->
      let ps =
        List.init slices (fun s ->
            Pool.async pool (fun () ->
                Pool.parallel_for ~start:(s * slice) ~finish:((s + 1) * slice)
                  ~body:(fun i ->
                    ignore (Rpb_prim.Atomic_array.fetch_and_add hits i 1))
                  pool))
      in
      List.iter (fun p -> Pool.await pool p) ps);
  Array.iteri
    (fun i c ->
      if c <> 1 then Alcotest.failf "index %d ran %d times" i c)
    (Rpb_prim.Atomic_array.to_array hits)

let () =
  Alcotest.run "rpb_stress"
    [
      ( "pool_failures",
        [
          Alcotest.test_case "exception in parallel_for" `Quick
            test_pool_exception_in_parallel_for;
          Alcotest.test_case "100 failing tasks" `Quick test_pool_many_failing_tasks;
          Alcotest.test_case "deep nesting" `Quick test_pool_deep_nesting;
          Alcotest.test_case "unbalanced bodies" `Quick test_pool_unbalanced_bodies;
          Alcotest.test_case "two pools" `Quick test_two_pools_coexist;
        ] );
      ( "scatter_failures",
        [
          Alcotest.test_case "many duplicates" `Quick
            test_checked_scatter_many_duplicates_parallel;
          Alcotest.test_case "needle duplicate" `Quick
            test_checked_scatter_single_duplicate_in_big_input;
        ] );
      ( "mq_stress",
        [
          Alcotest.test_case "burst fan-out" `Quick test_mq_burst_stress;
          Alcotest.test_case "single-lane order" `Quick
            test_mq_priority_respected_in_bulk;
        ] );
      ( "shadow_oracle",
        [
          Alcotest.test_case "no false positives (scatter)" `Quick
            test_shadow_no_false_positives_multi_domain;
          Alcotest.test_case "no false positives (chunks)" `Quick
            test_shadow_chunks_no_false_positives_multi_domain;
          Alcotest.test_case "sort differential oracle" `Quick
            test_oracle_sort_benchmark_multi_domain;
        ] );
      ( "splitter_stress",
        [
          Alcotest.test_case "thief storm: no lost ranges, counts reconcile"
            `Quick test_splitter_thief_storm;
          Alcotest.test_case "lazy fast path vs concurrent constructs" `Quick
            test_lazy_fast_path_under_concurrent_constructs;
        ] );
      ( "integration",
        [
          Alcotest.test_case "bwt pipeline" `Quick test_pipeline_of_benchmark_stages;
          Alcotest.test_case "graph futures" `Quick test_graph_pipeline_end_to_end;
          Alcotest.test_case "full text stack" `Quick test_full_text_stack;
          Alcotest.test_case "determinism across workers" `Quick
            test_deterministic_across_worker_counts;
        ] );
    ]
