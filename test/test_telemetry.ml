(* Tests for the machine-readable bench output (Bench_json): JSON printing /
   parsing, the BENCH_*.json schema round-trip, the per-run stat capture in
   Registry.measure_entry, and the Chrome-trace output of Pool.Trace. *)

open Rpb_benchmarks

let with_pool n f =
  let pool = Rpb_pool.Pool.create ~num_workers:n () in
  Fun.protect ~finally:(fun () -> Rpb_pool.Pool.shutdown pool) (fun () -> f pool)

(* ---------- JSON value round-trips ---------- *)

let sample_json =
  Bench_json.(
    Obj
      [
        ("null", Null);
        ("yes", Bool true);
        ("no", Bool false);
        ("int", Int (-42));
        ("big", Int max_int);
        ("float", Float 3.25);
        ("integral_float", Float 5.0);
        ("tiny", Float 1.25e-9);
        ("str", Str "a \"quoted\" \\ line\nwith\ttabs and \x01 control");
        ("list", List [ Int 1; Str "two"; Float 3.0; Null ]);
        ("nested", Obj [ ("empty_list", List []); ("empty_obj", Obj []) ]);
      ])

let test_json_roundtrip () =
  let s = Bench_json.to_string sample_json in
  let back = Bench_json.of_string s in
  Alcotest.(check bool) "value round-trips" true (back = sample_json);
  (* And the printed form is stable across a second trip. *)
  Alcotest.(check string) "printing is stable" s
    (Bench_json.to_string (Bench_json.of_string s))

let test_json_parser_accepts_whitespace () =
  let j =
    Bench_json.of_string
      " { \"a\" : [ 1 , 2.5 , true , \"x\" ] ,\n \"b\" : null } "
  in
  Alcotest.(check int) "a[0]"
    1
    Bench_json.(get_int (List.nth (get_list (member "a" j)) 0));
  Alcotest.(check (float 1e-9)) "a[1]" 2.5
    Bench_json.(get_float (List.nth (get_list (member "a" j)) 1))

let test_json_parser_rejects_garbage () =
  let rejects s =
    match Bench_json.of_string s with
    | _ -> Alcotest.failf "accepted %S" s
    | exception Bench_json.Parse_error _ -> ()
  in
  rejects "";
  rejects "{";
  rejects "[1,]";
  rejects "{\"a\":1} trailing";
  rejects "\"unterminated";
  rejects "nul"

let test_json_unicode_escape () =
  let j = Bench_json.of_string "\"caf\\u00e9 \\u0416\"" in
  Alcotest.(check string) "utf-8 decoding" "caf\xc3\xa9 \xd0\x96"
    (Bench_json.get_str j)

(* ---------- the BENCH_*.json schema ---------- *)

let sample_record =
  Bench_json.
    {
      bench = "sa";
      input = "wiki";
      mode = "checked";
      scale = 2;
      threads = 4;
      repeats = 3;
      mean_ns = 1234567.875;
      min_ns = 1200000.0;
      samples_ns = [| 1234567.875; 1303703.625; 1200000.0 |];
      smoke = false;
      policy = "steal_half";
      verified = true;
      workers =
        [
          {
            worker_id = 0;
            tasks_executed = 120;
            steals_ok = 0;
            steals_failed = 3;
            idle_episodes = 1;
            max_deque_depth = 7;
          };
          {
            worker_id = 1;
            tasks_executed = 98;
            steals_ok = 14;
            steals_failed = 210;
            idle_episodes = 5;
            max_deque_depth = 4;
          };
        ];
    }

let test_record_roundtrip () =
  let j = Bench_json.record_to_json sample_record in
  let back = Bench_json.record_of_json (Bench_json.of_string (Bench_json.to_string j)) in
  Alcotest.(check bool) "record round-trips" true (back = sample_record)

let test_doc_roundtrip_via_file () =
  let path = Filename.temp_file "rpb_bench" ".json" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  let records =
    [ sample_record; { sample_record with bench = "bw"; verified = false } ]
  in
  Bench_json.write_doc ~path
    ~meta:[ ("generator", Bench_json.Str "test"); ("scale", Bench_json.Int 0) ]
    records;
  let back = Bench_json.read_doc path in
  Alcotest.(check int) "record count" 2 (List.length back);
  Alcotest.(check bool) "records round-trip" true (back = records)

let test_doc_rejects_wrong_schema_version () =
  let j =
    Bench_json.(Obj [ ("schema_version", Int 999); ("results", List []) ])
  in
  match Bench_json.records_of_doc j with
  | _ -> Alcotest.fail "accepted wrong schema_version"
  | exception Bench_json.Parse_error _ -> ()

let test_doc_emits_v3 () =
  Alcotest.(check int) "writer version" 3 Bench_json.schema_version;
  let j = Bench_json.doc ~meta:[] [ sample_record ] in
  Alcotest.(check int) "documents carry schema_version 3" 3
    Bench_json.(get_int (member "schema_version" j));
  Alcotest.(check bool) "v3 parses" true
    (Bench_json.records_of_doc j = [ sample_record ])

(* A checked-in schema_version=1 document, as PR 1's writer emitted it —
   pinned as a string literal so reader back-compat cannot silently rot. *)
let v1_document =
  "{\"schema_version\":1,\"meta\":{\"generator\":\"rpb-bench\",\"scale\":0},\
   \"results\":[{\"bench\":\"sort\",\"input\":\"exponential\",\
   \"mode\":\"unsafe\",\"scale\":0,\"threads\":2,\"repeats\":1,\
   \"mean_ns\":1500000.0,\"min_ns\":1500000.0,\"verified\":true,\
   \"workers\":[{\"id\":0,\"tasks\":10,\"steals_ok\":1,\"steals_failed\":2,\
   \"idle\":0,\"max_deque_depth\":3}]}]}"

let test_v1_document_still_parses () =
  let records = Bench_json.records_of_doc (Bench_json.of_string v1_document) in
  match records with
  | [ r ] ->
    Alcotest.(check string) "bench" "sort" r.Bench_json.bench;
    Alcotest.(check int) "threads" 2 r.Bench_json.threads;
    Alcotest.(check int) "worker rows" 1 (List.length r.Bench_json.workers);
    Alcotest.(check int) "worker max_deque_depth" 3
      (List.hd r.Bench_json.workers).Bench_json.max_deque_depth;
    (* v3 fields default sanely on pre-v3 records. *)
    Alcotest.(check int) "no sample vector" 0
      (Array.length r.Bench_json.samples_ns);
    Alcotest.(check bool) "not a smoke run" false r.Bench_json.smoke;
    Alcotest.(check string) "policy defaults" "default" r.Bench_json.policy
  | _ -> Alcotest.fail "expected exactly one record in the v1 document"

(* A checked-in schema_version=2 document, as PR 4's writer emitted it (the
   results shape is identical to v1; only the version number moved). *)
let v2_document =
  "{\"schema_version\":2,\"meta\":{\"generator\":\"rpb-bench\",\"scale\":0},\
   \"results\":[{\"bench\":\"hist\",\"input\":\"uniform\",\
   \"mode\":\"sync\",\"scale\":1,\"threads\":4,\"repeats\":2,\
   \"mean_ns\":2500000.0,\"min_ns\":2400000.0,\"verified\":true,\
   \"workers\":[{\"id\":0,\"tasks\":40,\"steals_ok\":2,\"steals_failed\":5,\
   \"idle\":1,\"max_deque_depth\":4}]}]}"

let test_v2_document_still_parses () =
  let records = Bench_json.records_of_doc (Bench_json.of_string v2_document) in
  match records with
  | [ r ] ->
    Alcotest.(check string) "bench" "hist" r.Bench_json.bench;
    Alcotest.(check int) "repeats" 2 r.Bench_json.repeats;
    Alcotest.(check int) "no sample vector" 0
      (Array.length r.Bench_json.samples_ns);
    Alcotest.(check bool) "not a smoke run" false r.Bench_json.smoke;
    Alcotest.(check string) "policy defaults" "default" r.Bench_json.policy
  | _ -> Alcotest.fail "expected exactly one record in the v2 document"

(* One document holding v1-, v2- and v3-shaped records at once: the reader is
   keyed on the per-record fields, not the document version, so old records
   mixed into a v3 document must round-trip with sane defaults. *)
let test_mixed_version_document () =
  let v1_shape =
    (* As PR 1 wrote records: no samples_ns, no smoke. *)
    "{\"bench\":\"bw\",\"input\":\"wiki\",\"mode\":\"unsafe\",\"scale\":0,\
     \"threads\":2,\"repeats\":3,\"mean_ns\":1000.0,\"min_ns\":900.0,\
     \"verified\":true,\"workers\":[]}"
  in
  let v2_shape =
    (* v2 kept the v1 record shape. *)
    "{\"bench\":\"lrs\",\"input\":\"wiki\",\"mode\":\"checked\",\"scale\":0,\
     \"threads\":2,\"repeats\":1,\"mean_ns\":2000.0,\"min_ns\":2000.0,\
     \"verified\":true,\"workers\":[]}"
  in
  let v3_shape =
    "{\"bench\":\"sa\",\"input\":\"wiki\",\"mode\":\"unsafe\",\"scale\":0,\
     \"threads\":2,\"repeats\":3,\"mean_ns\":3000.0,\"min_ns\":2900.0,\
     \"samples_ns\":[3100.0,3000.0,2900.0],\"smoke\":true,\
     \"verified\":true,\"workers\":[]}"
  in
  let doc =
    Printf.sprintf
      "{\"schema_version\":3,\"meta\":{},\"results\":[%s,%s,%s]}" v1_shape
      v2_shape v3_shape
  in
  let records = Bench_json.records_of_doc (Bench_json.of_string doc) in
  (match records with
   | [ r1; r2; r3 ] ->
     Alcotest.(check int) "v1 record: no samples" 0
       (Array.length r1.Bench_json.samples_ns);
     Alcotest.(check bool) "v1 record: not smoke" false r1.Bench_json.smoke;
     Alcotest.(check int) "v2 record: no samples" 0
       (Array.length r2.Bench_json.samples_ns);
     Alcotest.(check bool) "v3 record: smoke flag survives" true
       r3.Bench_json.smoke;
     Alcotest.(check int) "v3 record: sample count" 3
       (Array.length r3.Bench_json.samples_ns);
     Alcotest.(check (float 1e-9)) "v3 record: first sample" 3100.0
       r3.Bench_json.samples_ns.(0);
     (* Round-trip: re-emitting and re-reading preserves everything, with
        the defaulted fields now explicit. *)
     let again =
       Bench_json.records_of_doc
         (Bench_json.of_string
            (Bench_json.to_string (Bench_json.doc ~meta:[] records)))
     in
     Alcotest.(check bool) "mixed document round-trips" true (again = records)
   | _ -> Alcotest.fail "expected three records in the mixed document");
  (* A file round-trip of the same mixed document. *)
  let path = Filename.temp_file "rpb_mixed" ".json" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  let oc = open_out path in
  output_string oc doc;
  close_out oc;
  Alcotest.(check bool) "file read matches in-memory parse" true
    (Bench_json.read_doc path = records)

(* ---------- per-run stat capture ---------- *)

let test_measure_entry_captures_stats () =
  match Registry.find "sort" with
  | None -> Alcotest.fail "sort benchmark missing from registry"
  | Some e ->
    with_pool 4 (fun pool ->
        let record, size =
          Registry.measure_entry pool ~entry:e
            ~input:(List.hd e.Common.inputs) ~scale:0 ~repeats:2
            ~how:(`Par Mode.Unsafe)
        in
        Alcotest.(check bool) "has a size string" true (String.length size > 0);
        Alcotest.(check string) "bench name" "sort" record.Bench_json.bench;
        Alcotest.(check string) "mode" "unsafe" record.Bench_json.mode;
        Alcotest.(check int) "threads" 4 record.Bench_json.threads;
        Alcotest.(check bool) "verified" true record.Bench_json.verified;
        Alcotest.(check bool) "positive mean" true
          (record.Bench_json.mean_ns > 0.0);
        Alcotest.(check bool) "min <= mean" true
          (record.Bench_json.min_ns <= record.Bench_json.mean_ns);
        Alcotest.(check int) "one stats row per worker" 4
          (List.length record.Bench_json.workers);
        (* The whole JSON path stays intact for a live measurement. *)
        let j = Bench_json.record_to_json record in
        let back =
          Bench_json.record_of_json
            (Bench_json.of_string (Bench_json.to_string j))
        in
        Alcotest.(check bool) "live record round-trips" true (back = record))

let test_measure_entry_seq_mode () =
  match Registry.find "hist" with
  | None -> Alcotest.fail "hist benchmark missing from registry"
  | Some e ->
    with_pool 1 (fun pool ->
        let record, _ =
          Registry.measure_entry pool ~entry:e
            ~input:(List.hd e.Common.inputs) ~scale:0 ~repeats:1 ~how:`Seq
        in
        Alcotest.(check string) "mode" "seq" record.Bench_json.mode;
        let steals =
          List.fold_left
            (fun acc w -> acc + w.Bench_json.steals_ok)
            0 record.Bench_json.workers
        in
        Alcotest.(check int) "sequential run never steals" 0 steals)

(* The record carries the measuring pool's policy name, and it survives the
   JSON round-trip — the attribution `rpb report`'s policy race relies on. *)
let test_measure_entry_stamps_policy () =
  let module Pool = Rpb_pool.Pool in
  match (Registry.find "sort", Pool.Policy.find "steal_half") with
  | None, _ -> Alcotest.fail "sort benchmark missing from registry"
  | _, None -> Alcotest.fail "steal_half policy missing from registry"
  | Some e, Some policy ->
    let pool = Pool.create ~policy ~num_workers:2 () in
    Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
    let record, _ =
      Registry.measure_entry pool ~entry:e ~input:(List.hd e.Common.inputs)
        ~scale:0 ~repeats:1 ~how:(`Par Mode.Unsafe)
    in
    Alcotest.(check string) "record carries the pool policy" "steal_half"
      record.Bench_json.policy;
    let back =
      Bench_json.record_of_json
        (Bench_json.of_string
           (Bench_json.to_string (Bench_json.record_to_json record)))
    in
    Alcotest.(check string) "policy survives the JSON round-trip" "steal_half"
      back.Bench_json.policy

(* ---------- chrome trace output parses as JSON ---------- *)

let test_trace_file_is_valid_json () =
  let module Pool = Rpb_pool.Pool in
  with_pool 2 (fun pool ->
      Pool.Trace.start ();
      Pool.run pool (fun () ->
          Pool.Trace.span pool "span \"with\" quotes" (fun () ->
              Pool.parallel_for ~grain:4 ~start:0 ~finish:64
                ~body:(fun _ -> ())
                pool));
      let path = Filename.temp_file "rpb_trace" ".json" in
      Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
      let n = Pool.Trace.stop_to_file path in
      let ic = open_in_bin path in
      let body = really_input_string ic (in_channel_length ic) in
      close_in ic;
      let j = Bench_json.of_string body in
      let events = Bench_json.get_list j in
      Alcotest.(check int) "event count matches" n (List.length events);
      List.iter
        (fun e ->
          Alcotest.(check string) "complete event" "X"
            Bench_json.(get_str (member "ph" e));
          ignore Bench_json.(get_float (member "ts" e));
          ignore Bench_json.(get_float (member "dur" e));
          ignore Bench_json.(get_int (member "tid" e)))
        events)

let () =
  Alcotest.run "rpb_telemetry"
    [
      ( "json",
        [
          Alcotest.test_case "value round-trip" `Quick test_json_roundtrip;
          Alcotest.test_case "whitespace" `Quick
            test_json_parser_accepts_whitespace;
          Alcotest.test_case "rejects garbage" `Quick
            test_json_parser_rejects_garbage;
          Alcotest.test_case "unicode escapes" `Quick test_json_unicode_escape;
        ] );
      ( "schema",
        [
          Alcotest.test_case "record round-trip" `Quick test_record_roundtrip;
          Alcotest.test_case "doc via file" `Quick test_doc_roundtrip_via_file;
          Alcotest.test_case "schema version check" `Quick
            test_doc_rejects_wrong_schema_version;
          Alcotest.test_case "writer emits v3" `Quick test_doc_emits_v3;
          Alcotest.test_case "v1 back-compat" `Quick
            test_v1_document_still_parses;
          Alcotest.test_case "v2 back-compat" `Quick
            test_v2_document_still_parses;
          Alcotest.test_case "mixed v1/v2/v3 records in one document" `Quick
            test_mixed_version_document;
        ] );
      ( "capture",
        [
          Alcotest.test_case "measure_entry stats" `Quick
            test_measure_entry_captures_stats;
          Alcotest.test_case "measure_entry seq" `Quick
            test_measure_entry_seq_mode;
          Alcotest.test_case "measure_entry stamps the policy" `Quick
            test_measure_entry_stamps_policy;
        ] );
      ( "trace",
        [
          Alcotest.test_case "chrome trace is valid JSON" `Quick
            test_trace_file_is_valid_json;
        ] );
    ]
