(* Tests for suffix arrays, LCP/LRS, and Burrows–Wheeler. *)

open Rpb_text
open Rpb_pool

let with_pool n f =
  let pool = Pool.create ~num_workers:n () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () -> f pool)

let in_pool f = with_pool 3 (fun pool -> Pool.run pool (fun () -> f pool))

(* ---------- Suffix_array ---------- *)

let test_sa_banana () =
  in_pool (fun pool ->
      let sa = Suffix_array.build pool "banana" in
      Alcotest.(check bool) "banana" true (sa = [| 5; 3; 1; 0; 4; 2 |]))

let test_sa_tiny_cases () =
  in_pool (fun pool ->
      Alcotest.(check bool) "empty" true (Suffix_array.build pool "" = [||]);
      Alcotest.(check bool) "single" true (Suffix_array.build pool "x" = [| 0 |]);
      Alcotest.(check bool) "aa" true (Suffix_array.build pool "aa" = [| 1; 0 |]);
      Alcotest.(check bool) "ab" true (Suffix_array.build pool "ab" = [| 0; 1 |]);
      Alcotest.(check bool) "ba" true (Suffix_array.build pool "ba" = [| 1; 0 |]))

let test_sa_matches_naive_on_wiki () =
  in_pool (fun pool ->
      let s = Text_gen.wiki ~size:2000 ~seed:1 in
      let got = Suffix_array.build pool s in
      Alcotest.(check bool) "valid" true (Suffix_array.is_suffix_array s got);
      Alcotest.(check bool) "matches naive" true (got = Suffix_array.build_naive s))

let test_sa_periodic_worst_case () =
  in_pool (fun pool ->
      (* Highly repetitive input exercises many doubling rounds. *)
      let s = Text_gen.periodic ~size:4096 ~period:"ab" in
      let sa = Suffix_array.build pool s in
      Alcotest.(check bool) "valid" true (Suffix_array.is_suffix_array s sa);
      let s = Text_gen.periodic ~size:2048 ~period:"a" in
      let sa = Suffix_array.build pool s in
      (* All-equal characters: suffixes sort by decreasing start. *)
      Alcotest.(check bool) "all-a" true
        (Rpb_prim.Util.array_for_all_i (fun j p -> p = 2047 - j) sa))

let test_sa_checked_mode_agrees () =
  in_pool (fun pool ->
      let s = Text_gen.wiki ~size:3000 ~seed:2 in
      let a = Suffix_array.build ~mode:Suffix_array.Unchecked_scatter pool s in
      let b = Suffix_array.build ~mode:Suffix_array.Checked_scatter pool s in
      Alcotest.(check bool) "modes agree" true (a = b))

let test_sa_rank_of () =
  in_pool (fun pool ->
      let s = "mississippi" in
      let sa = Suffix_array.build pool s in
      let rank = Suffix_array.rank_of pool sa in
      Alcotest.(check bool) "inverse" true
        (Rpb_prim.Util.array_for_all_i (fun i r -> sa.(r) = i) rank))

let prop_sa_valid_on_random =
  QCheck.Test.make ~name:"suffix array valid on random strings" ~count:30
    QCheck.(pair small_nat (int_range 1 4))
    (fun (seed, alphabet) ->
      let s = Text_gen.random_bytes ~size:500 ~seed ~alphabet in
      with_pool 2 (fun pool ->
          Pool.run pool (fun () ->
              Suffix_array.is_suffix_array s (Suffix_array.build pool s))))

(* ---------- Lcp / LRS ---------- *)

let test_lcp_banana () =
  in_pool (fun pool ->
      let s = "banana" in
      let sa = Suffix_array.build pool s in
      let lcp = Lcp.kasai pool s ~sa in
      (* suffixes: a, ana, anana, banana, na, nana *)
      Alcotest.(check bool) "lcp" true (lcp = [| 0; 1; 3; 0; 0; 2 |]))

let test_lrs_known () =
  in_pool (fun pool ->
      let r = Lcp.longest_repeated_substring pool "banana" in
      Alcotest.(check int) "banana ana" 3 r.Lcp.length;
      Alcotest.(check string) "substring repeats" "ana"
        (String.sub "banana" r.Lcp.position 3);
      let r = Lcp.longest_repeated_substring pool "abcdefg" in
      Alcotest.(check int) "no repeats" 0 r.Lcp.length;
      let r = Lcp.longest_repeated_substring pool "aaaa" in
      Alcotest.(check int) "aaaa" 3 r.Lcp.length)

let test_lrs_matches_naive () =
  in_pool (fun pool ->
      List.iter
        (fun seed ->
          let s = Text_gen.random_bytes ~size:300 ~seed ~alphabet:3 in
          let fast = (Lcp.longest_repeated_substring pool s).Lcp.length in
          Alcotest.(check int) "lrs = naive" (Lcp.lrs_naive s) fast)
        [ 1; 2; 3; 4; 5 ])

let test_lrs_substring_occurs_twice () =
  in_pool (fun pool ->
      let s = Text_gen.wiki ~size:4000 ~seed:3 in
      let r = Lcp.longest_repeated_substring pool s in
      Alcotest.(check bool) "has repeats" true (r.Lcp.length > 0);
      let sub = String.sub s r.Lcp.position r.Lcp.length in
      (* Count occurrences of sub in s. *)
      let count = ref 0 in
      for i = 0 to String.length s - r.Lcp.length do
        if String.sub s i r.Lcp.length = sub then incr count
      done;
      Alcotest.(check bool) "occurs at least twice" true (!count >= 2))

(* ---------- Bwt ---------- *)

let test_bwt_known () =
  in_pool (fun pool ->
      (* Standard example: BWT of "banana\0" is "annb\0aa". *)
      let b = Bwt.encode pool "banana" in
      Alcotest.(check string) "bwt" "annb\000aa" b)

let test_bwt_roundtrip () =
  in_pool (fun pool ->
      List.iter
        (fun s ->
          let decoded = Bwt.decode pool (Bwt.encode pool s) in
          Alcotest.(check string) ("roundtrip " ^ String.sub s 0 (min 10 (String.length s)))
            s decoded)
        [ "banana"; "a"; "ab"; "mississippi"; Text_gen.wiki ~size:5000 ~seed:4 ])

let test_bwt_checked_roundtrip () =
  in_pool (fun pool ->
      let s = Text_gen.wiki ~size:2000 ~seed:5 in
      Alcotest.(check string) "checked decode" s
        (Bwt.decode ~checked:true pool (Bwt.encode pool s)))

let test_bwt_rejects_sentinel_in_input () =
  in_pool (fun pool ->
      match Bwt.encode pool "ab\000cd" with
      | exception Bwt.Contains_sentinel -> ()
      | _ -> Alcotest.fail "sentinel input accepted")

let test_bwt_decode_requires_sentinel () =
  in_pool (fun pool ->
      match Bwt.decode pool "abcd" with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "missing sentinel accepted")

let test_lf_mapping_is_permutation () =
  in_pool (fun pool ->
      let b = Bwt.encode pool "mississippi" in
      let lf = Bwt.lf_mapping pool b in
      let n = Array.length lf in
      let seen = Array.make n false in
      Array.iter (fun i -> seen.(i) <- true) lf;
      Alcotest.(check bool) "permutation" true (Array.for_all Fun.id seen))

let prop_bwt_roundtrip =
  QCheck.Test.make ~name:"BWT decode . encode = id" ~count:30
    QCheck.(pair small_nat (int_range 1 6))
    (fun (seed, alphabet) ->
      let s = Text_gen.random_bytes ~size:400 ~seed ~alphabet in
      with_pool 2 (fun pool ->
          Pool.run pool (fun () -> Bwt.decode pool (Bwt.encode pool s) = s)))

(* ---------- Text_gen ---------- *)

let test_text_gen_properties () =
  let s = Text_gen.wiki ~size:1000 ~seed:7 in
  Alcotest.(check int) "size" 1000 (String.length s);
  Alcotest.(check bool) "no NUL" false (String.contains s '\000');
  Alcotest.(check string) "deterministic" s (Text_gen.wiki ~size:1000 ~seed:7);
  Alcotest.(check bool) "seed matters" true (s <> Text_gen.wiki ~size:1000 ~seed:8);
  let p = Text_gen.periodic ~size:7 ~period:"abc" in
  Alcotest.(check string) "periodic" "abcabca" p;
  let r = Text_gen.random_bytes ~size:100 ~seed:1 ~alphabet:2 in
  Alcotest.(check bool) "alphabet respected" true
    (String.for_all (fun c -> c = 'a' || c = 'b') r)

(* ---------- Word_count ---------- *)

let test_tokenize () =
  Alcotest.(check (array string)) "basic"
    [| "hello"; "world" |]
    (Word_count.tokenize "Hello, WORLD!");
  Alcotest.(check (array string)) "empty" [||] (Word_count.tokenize "123 .,;");
  Alcotest.(check (array string)) "edges"
    [| "a"; "b" |]
    (Word_count.tokenize "a1b")

let test_word_count_known () =
  in_pool (fun pool ->
      let got = Word_count.count pool "the cat and the dog and the bird" in
      Alcotest.(check bool) "counts" true
        (got = [| ("and", 2); ("bird", 1); ("cat", 1); ("dog", 1); ("the", 3) |]))

let test_word_count_matches_seq () =
  in_pool (fun pool ->
      let s = Text_gen.wiki ~size:20_000 ~seed:31 in
      Alcotest.(check bool) "parallel = hashtable" true
        (Word_count.count pool s = Word_count.count_seq s))

let test_word_count_top_k () =
  in_pool (fun pool ->
      let s = Text_gen.wiki ~size:20_000 ~seed:32 in
      let top = Word_count.top_k pool ~k:5 s in
      Alcotest.(check int) "k results" 5 (Array.length top);
      for i = 1 to 4 do
        Alcotest.(check bool) "sorted by freq" true (snd top.(i - 1) >= snd top.(i))
      done;
      (* Zipfian generator: "the" is the most frequent word by construction. *)
      Alcotest.(check string) "most frequent" "the" (fst top.(0)))

let prop_word_count_total_mass =
  QCheck.Test.make ~name:"word counts sum to token count" ~count:20
    QCheck.small_nat
    (fun seed ->
      let s = Text_gen.wiki ~size:2_000 ~seed in
      with_pool 2 (fun pool ->
          Pool.run pool (fun () ->
              let counts = Word_count.count pool s in
              Array.fold_left (fun acc (_, c) -> acc + c) 0 counts
              = Array.length (Word_count.tokenize s))))

let () =
  Alcotest.run "rpb_text"
    [
      ( "suffix_array",
        [
          Alcotest.test_case "banana" `Quick test_sa_banana;
          Alcotest.test_case "tiny cases" `Quick test_sa_tiny_cases;
          Alcotest.test_case "matches naive" `Quick test_sa_matches_naive_on_wiki;
          Alcotest.test_case "periodic worst case" `Quick test_sa_periodic_worst_case;
          Alcotest.test_case "checked mode agrees" `Quick test_sa_checked_mode_agrees;
          Alcotest.test_case "rank_of" `Quick test_sa_rank_of;
          QCheck_alcotest.to_alcotest prop_sa_valid_on_random;
        ] );
      ( "lcp",
        [
          Alcotest.test_case "banana lcp" `Quick test_lcp_banana;
          Alcotest.test_case "lrs known" `Quick test_lrs_known;
          Alcotest.test_case "lrs = naive" `Quick test_lrs_matches_naive;
          Alcotest.test_case "lrs occurs twice" `Quick test_lrs_substring_occurs_twice;
        ] );
      ( "bwt",
        [
          Alcotest.test_case "known bwt" `Quick test_bwt_known;
          Alcotest.test_case "roundtrip" `Quick test_bwt_roundtrip;
          Alcotest.test_case "checked roundtrip" `Quick test_bwt_checked_roundtrip;
          Alcotest.test_case "rejects sentinel" `Quick test_bwt_rejects_sentinel_in_input;
          Alcotest.test_case "decode needs sentinel" `Quick
            test_bwt_decode_requires_sentinel;
          Alcotest.test_case "LF permutation" `Quick test_lf_mapping_is_permutation;
          QCheck_alcotest.to_alcotest prop_bwt_roundtrip;
        ] );
      ( "word_count",
        [
          Alcotest.test_case "tokenize" `Quick test_tokenize;
          Alcotest.test_case "known counts" `Quick test_word_count_known;
          Alcotest.test_case "matches seq" `Quick test_word_count_matches_seq;
          Alcotest.test_case "top_k" `Quick test_word_count_top_k;
          QCheck_alcotest.to_alcotest prop_word_count_total_mass;
        ] );
      ("text_gen", [ Alcotest.test_case "properties" `Quick test_text_gen_properties ]);
    ]
